//! The pipeline-wide resource governor.
//!
//! Partial evaluation runs programs *at compile time* — the reducer
//! unfolds calls, the specializer enumerates configurations, the VM and
//! the interpreter family execute residual and subject code — so any
//! divergent, deeply recursive or adversarial input can hang or abort
//! compilation unless every engine is metered.  This crate is the one
//! shared vocabulary for that metering:
//!
//! * [`Limits`] — the budgets themselves: evaluation steps, host-stack
//!   call depth, syntactic nesting, static unfolding depth, heap cells,
//!   residual program size.  Every public entry point in the workspace
//!   accepts a `Limits` (directly or via an options struct).
//! * [`Fuel`] — a running meter over one `Limits`, shared by the engines
//!   that need incremental accounting.
//! * [`Trap`] — the structured error raised when a budget is exhausted
//!   or an execution-model invariant is violated, designed so callers
//!   can distinguish "the input diverges" from "the engine is broken".
//!
//! The crate sits below `pe-sexpr` in the dependency graph (the reader
//! is itself a governed entry point) and is re-exported by `pe-interp`
//! and `pe-core`, so downstream users never import it directly.

use std::fmt;

/// Resource budgets shared by every pipeline entry point.
///
/// The defaults are generous enough for the full benchmark suite at
/// test sizes; adversarial callers tighten the relevant field (struct
/// update syntax keeps call sites stable):
///
/// ```
/// use pe_governor::Limits;
/// let strict = Limits { fuel: 10_000, max_call_depth: 1_000, ..Limits::default() };
/// assert!(strict.fuel < Limits::default().fuel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of evaluation steps (calls / machine transitions).
    pub fuel: u64,
    /// Maximum host-stack recursion depth for the engines that model a
    /// native stack (the Fig. 3/Fig. 4 interpreters, the Hobbit-like
    /// baseline).  The flat machines (tail interpreter, S₀ evaluator,
    /// VM) never grow the host stack and ignore this field.  A trap at
    /// this depth is only useful if the host stack can actually hold
    /// that many frames — run deep programs under a big-stack worker or
    /// lower the cap to match the thread you are on.
    pub max_call_depth: usize,
    /// Maximum syntactic nesting depth accepted by the S-expression
    /// reader (and hence by every parser above it).
    pub max_syntax_depth: usize,
    /// Maximum static unfolding depth in the specializers (`pe-core`'s
    /// inlining and `pe-unmix`'s call unfolding).
    pub max_unfold_depth: usize,
    /// Maximum heap cells (pairs, closures, reader nodes) an engine may
    /// allocate on behalf of the subject program.
    pub max_heap: u64,
    /// Maximum residual output size (residual procedures) a specializer
    /// may emit before giving up.
    pub max_residual: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            fuel: 500_000_000,
            max_call_depth: 500_000,
            max_syntax_depth: 1_000,
            max_unfold_depth: 300,
            max_heap: 100_000_000,
            max_residual: 50_000,
        }
    }
}

impl Limits {
    /// A tight budget for adversarial or untrusted input: everything is
    /// small enough that a divergent program traps in well under a
    /// second without exhausting memory or the host stack of an
    /// ordinary thread.
    #[must_use]
    pub fn strict() -> Limits {
        Limits {
            fuel: 1_000_000,
            max_call_depth: 2_000,
            max_syntax_depth: 200,
            max_unfold_depth: 100,
            max_heap: 1_000_000,
            max_residual: 1_000,
        }
    }

    /// A starvation budget: every meter is at its floor, so any engine
    /// run either finishes in a handful of steps or traps immediately.
    /// The bottom rung of every chaos [`ladder`](Limits::ladder).
    #[must_use]
    pub fn starved() -> Limits {
        Limits {
            fuel: 1,
            max_call_depth: 1,
            max_syntax_depth: 1,
            max_unfold_depth: 1,
            max_heap: 1,
            max_residual: 1,
        }
    }

    /// Starts a [`LimitsBuilder`] from the defaults.
    ///
    /// ```
    /// use pe_governor::Limits;
    /// let l = Limits::builder().with_fuel(10_000).with_depth(128).build();
    /// assert_eq!(l.fuel, 10_000);
    /// assert_eq!(l.max_call_depth, 128);
    /// assert_eq!(l.max_heap, Limits::default().max_heap);
    /// ```
    #[must_use]
    pub fn builder() -> LimitsBuilder {
        LimitsBuilder { limits: Limits::default() }
    }

    /// Resumes a [`LimitsBuilder`] from these limits, for deriving a
    /// variant of an already-tightened budget.
    #[must_use]
    pub fn to_builder(self) -> LimitsBuilder {
        LimitsBuilder { limits: self }
    }

    /// The chaos ladder: a shrinking sequence of budgets starting from
    /// `self`, halving fuel, call depth, heap, unfolding depth, and
    /// residual size at every rung (never below 1), with
    /// [`Limits::starved`] as the final rung.  Syntax depth is left
    /// alone: the ladder stresses *execution* budgets, and re-reading
    /// the same program under a shrinking syntax cap would only measure
    /// the reader.
    ///
    /// `rungs` counts the halved steps, so the returned vector has
    /// `rungs + 2` entries: `self`, `rungs` halvings, starvation.
    #[must_use]
    pub fn ladder(&self, rungs: usize) -> Vec<Limits> {
        let mut out = Vec::with_capacity(rungs + 2);
        let mut cur = *self;
        out.push(cur);
        for _ in 0..rungs {
            cur = Limits {
                fuel: (cur.fuel / 2).max(1),
                max_call_depth: (cur.max_call_depth / 2).max(1),
                max_syntax_depth: cur.max_syntax_depth,
                max_unfold_depth: (cur.max_unfold_depth / 2).max(1),
                max_heap: (cur.max_heap / 2).max(1),
                max_residual: (cur.max_residual / 2).max(1),
            };
            out.push(cur);
        }
        out.push(Limits { max_syntax_depth: self.max_syntax_depth, ..Limits::starved() });
        out
    }
}

/// Fluent constructor for [`Limits`], starting from the defaults.
///
/// Struct-update syntax (`Limits { fuel: 10, ..Limits::default() }`)
/// still works, but call sites that only tighten one or two budgets
/// read better — and survive field additions without churn — through
/// the builder.
#[derive(Debug, Clone, Copy)]
pub struct LimitsBuilder {
    limits: Limits,
}

impl LimitsBuilder {
    /// Sets [`Limits::fuel`].
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.limits.fuel = fuel;
        self
    }

    /// Sets [`Limits::max_call_depth`].
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.limits.max_call_depth = depth;
        self
    }

    /// Sets [`Limits::max_syntax_depth`].
    #[must_use]
    pub fn with_syntax_depth(mut self, depth: usize) -> Self {
        self.limits.max_syntax_depth = depth;
        self
    }

    /// Sets [`Limits::max_unfold_depth`].
    #[must_use]
    pub fn with_unfold_depth(mut self, depth: usize) -> Self {
        self.limits.max_unfold_depth = depth;
        self
    }

    /// Sets [`Limits::max_heap`].
    #[must_use]
    pub fn with_heap(mut self, cells: u64) -> Self {
        self.limits.max_heap = cells;
        self
    }

    /// Sets [`Limits::max_residual`].
    #[must_use]
    pub fn with_residual(mut self, procs: usize) -> Self {
        self.limits.max_residual = procs;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> Limits {
        self.limits
    }
}

/// A structured resource/execution trap.
///
/// The budget variants (`OutOfFuel`, `CallDepth`, `SyntaxDepth`,
/// `UnfoldDepth`, `Heap`, `Residual`) mean the *input* exceeded a
/// configured bound; the machine variants (`UnboundLabel`,
/// `BadDispatch`) mean a compiled program broke an execution-model
/// invariant and carry the program counter for diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The step budget ([`Limits::fuel`]) was exhausted.
    OutOfFuel { budget: u64 },
    /// Host-stack recursion exceeded [`Limits::max_call_depth`].
    CallDepth { limit: usize },
    /// Syntactic nesting exceeded [`Limits::max_syntax_depth`].
    SyntaxDepth { limit: usize },
    /// Static unfolding exceeded [`Limits::max_unfold_depth`].
    UnfoldDepth { limit: usize },
    /// Heap allocation exceeded [`Limits::max_heap`] cells.
    Heap { limit: u64 },
    /// Residual output exceeded [`Limits::max_residual`] procedures.
    Residual { limit: usize },
    /// A jump targeted a label that is not defined in the loaded
    /// program (`pc` is the block the machine was executing).
    UnboundLabel { label: String, pc: usize },
    /// A closure dispatch found something other than a well-formed
    /// closure (`pc` is the block the machine was executing).
    BadDispatch { pc: usize, detail: String },
    /// Static analysis proved the program diverges on every input, so
    /// it was refused before any fuel was spent.  `witness` names the
    /// offending cycle.
    StaticDivergence { witness: String },
}

/// The coarse classification of a [`Trap`], the vocabulary of the
/// differential oracle and the chaos ladder (pe-siege): two engines
/// "agree on a trap" when their traps share a class, and degradation
/// decisions are made per class, never per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrapClass {
    /// [`Trap::OutOfFuel`] — the step budget.
    Fuel,
    /// [`Trap::CallDepth`] — host-stack recursion.
    Depth,
    /// [`Trap::SyntaxDepth`] — syntactic nesting.
    Syntax,
    /// [`Trap::UnfoldDepth`] — static unfolding.
    Unfold,
    /// [`Trap::Heap`] — heap cells.
    Heap,
    /// [`Trap::Residual`] — residual output size.
    Residual,
    /// [`Trap::StaticDivergence`] — refused by termination analysis.
    Static,
    /// [`Trap::UnboundLabel`] / [`Trap::BadDispatch`] — a compiled
    /// program broke an execution-model invariant.  Never acceptable
    /// from pipeline-produced code.
    Machine,
}

impl TrapClass {
    /// The stable snake_case name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TrapClass::Fuel => "fuel",
            TrapClass::Depth => "depth",
            TrapClass::Syntax => "syntax",
            TrapClass::Unfold => "unfold",
            TrapClass::Heap => "heap",
            TrapClass::Residual => "residual",
            TrapClass::Static => "static",
            TrapClass::Machine => "machine",
        }
    }

    /// All classes, in report order.
    pub const ALL: [TrapClass; 8] = [
        TrapClass::Fuel,
        TrapClass::Depth,
        TrapClass::Syntax,
        TrapClass::Unfold,
        TrapClass::Heap,
        TrapClass::Residual,
        TrapClass::Static,
        TrapClass::Machine,
    ];
}

impl fmt::Display for TrapClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Trap {
    /// This trap's [`TrapClass`].
    #[must_use]
    pub fn class(&self) -> TrapClass {
        match self {
            Trap::OutOfFuel { .. } => TrapClass::Fuel,
            Trap::CallDepth { .. } => TrapClass::Depth,
            Trap::SyntaxDepth { .. } => TrapClass::Syntax,
            Trap::UnfoldDepth { .. } => TrapClass::Unfold,
            Trap::Heap { .. } => TrapClass::Heap,
            Trap::Residual { .. } => TrapClass::Residual,
            Trap::StaticDivergence { .. } => TrapClass::Static,
            Trap::UnboundLabel { .. } | Trap::BadDispatch { .. } => TrapClass::Machine,
        }
    }

    /// True when the trap means the *input* exceeded a configured
    /// budget (including a static-divergence refusal, which is a
    /// zero-fuel budget decision) rather than an engine invariant
    /// breaking.  Budget traps degrade to interpretation in the robust
    /// pipeline; machine traps surface as errors.
    #[must_use]
    pub fn is_budget(&self) -> bool {
        self.class() != TrapClass::Machine
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfFuel { budget } => {
                write!(f, "step budget of {budget} exhausted")
            }
            Trap::CallDepth { limit } => {
                write!(f, "call depth limit of {limit} exceeded")
            }
            Trap::SyntaxDepth { limit } => {
                write!(f, "syntax nesting limit of {limit} exceeded")
            }
            Trap::UnfoldDepth { limit } => {
                write!(f, "static unfolding limit of {limit} exceeded")
            }
            Trap::Heap { limit } => {
                write!(f, "heap limit of {limit} cells exceeded")
            }
            Trap::Residual { limit } => {
                write!(f, "residual output limit of {limit} procedures exceeded")
            }
            Trap::UnboundLabel { label, pc } => {
                write!(f, "jump to unbound label {label} (pc {pc})")
            }
            Trap::BadDispatch { pc, detail } => {
                write!(f, "bad closure dispatch at pc {pc}: {detail}")
            }
            Trap::StaticDivergence { witness } => {
                write!(f, "program provably diverges: {witness}")
            }
        }
    }
}

impl std::error::Error for Trap {}

/// A running meter over one [`Limits`].
///
/// Engines call [`Fuel::step`] per machine transition, [`Fuel::alloc`]
/// per heap cell, and bracket host-stack recursion with
/// [`Fuel::enter_call`] / [`Fuel::exit_call`]; the first exceeded
/// budget surfaces as a [`Trap`].
#[derive(Debug, Clone)]
pub struct Fuel {
    limits: Limits,
    steps: u64,
    cells: u64,
    depth: usize,
    peak_depth: usize,
}

/// A point-in-time reading of one [`Fuel`] meter — the "metrics at
/// trap time" payload attached to observability gauges.  Depth is the
/// *high-water* mark, not the current depth: by the time a trap has
/// propagated out of a host-stack engine the live depth has already
/// unwound to zero, but the peak is what explains the trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Steps spent so far.
    pub steps: u64,
    /// Heap cells charged so far.
    pub cells: u64,
    /// Deepest host-stack recursion reached.
    pub peak_depth: usize,
}

impl Fuel {
    /// Starts a fresh meter against `limits`.
    #[must_use]
    pub fn new(limits: &Limits) -> Fuel {
        Fuel { limits: *limits, steps: 0, cells: 0, depth: 0, peak_depth: 0 }
    }

    /// The limits this meter enforces.
    #[must_use]
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Charges one evaluation step.
    ///
    /// # Errors
    ///
    /// [`Trap::OutOfFuel`] once [`Limits::fuel`] steps have been spent.
    #[inline]
    pub fn step(&mut self) -> Result<(), Trap> {
        if self.steps >= self.limits.fuel {
            return Err(Trap::OutOfFuel { budget: self.limits.fuel });
        }
        self.steps += 1;
        Ok(())
    }

    /// Charges `cells` heap cells.
    ///
    /// # Errors
    ///
    /// [`Trap::Heap`] once [`Limits::max_heap`] cells are live-charged.
    #[inline]
    pub fn alloc(&mut self, cells: u64) -> Result<(), Trap> {
        self.cells = self.cells.saturating_add(cells);
        if self.cells > self.limits.max_heap {
            return Err(Trap::Heap { limit: self.limits.max_heap });
        }
        Ok(())
    }

    /// Enters one level of host-stack recursion.
    ///
    /// # Errors
    ///
    /// [`Trap::CallDepth`] beyond [`Limits::max_call_depth`] levels.
    #[inline]
    pub fn enter_call(&mut self) -> Result<(), Trap> {
        if self.depth >= self.limits.max_call_depth {
            return Err(Trap::CallDepth { limit: self.limits.max_call_depth });
        }
        self.depth += 1;
        if self.depth > self.peak_depth {
            self.peak_depth = self.depth;
        }
        Ok(())
    }

    /// Leaves one level of host-stack recursion.
    #[inline]
    pub fn exit_call(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Steps spent so far.
    #[must_use]
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Heap cells charged so far.
    #[must_use]
    pub fn cells_used(&self) -> u64 {
        self.cells
    }

    /// Current host-stack recursion depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Deepest host-stack recursion reached over the meter's life.
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// The current meter readings as one value.
    #[must_use]
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot { steps: self.steps, cells: self.cells, peak_depth: self.peak_depth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_meters_steps() {
        let mut f = Fuel::new(&Limits { fuel: 3, ..Limits::default() });
        assert!(f.step().is_ok());
        assert!(f.step().is_ok());
        assert!(f.step().is_ok());
        assert_eq!(f.step(), Err(Trap::OutOfFuel { budget: 3 }));
        assert_eq!(f.steps_used(), 3);
    }

    #[test]
    fn fuel_meters_heap() {
        let mut f = Fuel::new(&Limits { max_heap: 10, ..Limits::default() });
        assert!(f.alloc(10).is_ok());
        assert_eq!(f.alloc(1), Err(Trap::Heap { limit: 10 }));
    }

    #[test]
    fn fuel_meters_depth() {
        let mut f = Fuel::new(&Limits { max_call_depth: 2, ..Limits::default() });
        assert!(f.enter_call().is_ok());
        assert!(f.enter_call().is_ok());
        assert_eq!(f.enter_call(), Err(Trap::CallDepth { limit: 2 }));
        f.exit_call();
        assert!(f.enter_call().is_ok());
        // exit never underflows
        f.exit_call();
        f.exit_call();
        f.exit_call();
        assert_eq!(f.depth(), 0);
    }

    #[test]
    fn snapshot_reports_peak_depth() {
        let mut f = Fuel::new(&Limits::default());
        f.enter_call().unwrap();
        f.enter_call().unwrap();
        f.step().unwrap();
        f.alloc(7).unwrap();
        f.exit_call();
        f.exit_call();
        assert_eq!(f.depth(), 0);
        assert_eq!(
            f.snapshot(),
            MeterSnapshot { steps: 1, cells: 7, peak_depth: 2 }
        );
    }

    #[test]
    fn traps_render() {
        let cases: &[(Trap, &str)] = &[
            (Trap::OutOfFuel { budget: 5 }, "step budget"),
            (Trap::CallDepth { limit: 5 }, "call depth"),
            (Trap::SyntaxDepth { limit: 5 }, "syntax nesting"),
            (Trap::UnfoldDepth { limit: 5 }, "unfolding"),
            (Trap::Heap { limit: 5 }, "heap"),
            (Trap::Residual { limit: 5 }, "residual"),
            (Trap::UnboundLabel { label: "f".into(), pc: 3 }, "unbound label f"),
            (Trap::BadDispatch { pc: 3, detail: "int 5".into() }, "dispatch"),
            (
                Trap::StaticDivergence { witness: "cycle through f".into() },
                "provably diverges: cycle through f",
            ),
        ];
        for (t, needle) in cases {
            assert!(t.to_string().contains(needle), "{t}");
        }
    }

    #[test]
    fn builder_starts_from_defaults_and_sets_each_field() {
        let l = Limits::builder()
            .with_fuel(7)
            .with_depth(8)
            .with_syntax_depth(9)
            .with_unfold_depth(10)
            .with_heap(11)
            .with_residual(12)
            .build();
        assert_eq!(
            l,
            Limits {
                fuel: 7,
                max_call_depth: 8,
                max_syntax_depth: 9,
                max_unfold_depth: 10,
                max_heap: 11,
                max_residual: 12,
            }
        );
        // Untouched fields keep their defaults.
        let d = Limits::builder().with_fuel(5).build();
        assert_eq!(d, Limits { fuel: 5, ..Limits::default() });
        // to_builder resumes from an existing budget.
        let resumed = Limits::strict().to_builder().with_heap(99).build();
        assert_eq!(resumed, Limits { max_heap: 99, ..Limits::strict() });
    }

    #[test]
    fn ladder_shrinks_monotonically_to_starvation() {
        let top = Limits::builder().with_fuel(1000).with_depth(64).with_heap(500).build();
        let ladder = top.ladder(4);
        assert_eq!(ladder.len(), 6);
        assert_eq!(ladder[0], top);
        for pair in ladder.windows(2) {
            assert!(pair[1].fuel <= pair[0].fuel);
            assert!(pair[1].max_call_depth <= pair[0].max_call_depth);
            assert!(pair[1].max_heap <= pair[0].max_heap);
            assert!(pair[1].fuel >= 1 && pair[1].max_heap >= 1);
        }
        let last = ladder.last().unwrap();
        assert_eq!(last.fuel, 1);
        assert_eq!(last.max_call_depth, 1);
        // Syntax depth is not starved: the program still has to *read*.
        assert_eq!(last.max_syntax_depth, top.max_syntax_depth);
    }

    #[test]
    fn trap_classes_partition_the_variants() {
        // Exhaustive match, no wildcard: adding a `Trap` variant fails
        // to compile here, forcing an explicit degrade-vs-error
        // decision for the robust pipeline alongside `class()` and
        // `is_budget()`.
        fn degrades(t: &Trap) -> bool {
            match t {
                Trap::OutOfFuel { .. }
                | Trap::CallDepth { .. }
                | Trap::SyntaxDepth { .. }
                | Trap::UnfoldDepth { .. }
                | Trap::Heap { .. }
                | Trap::Residual { .. }
                | Trap::StaticDivergence { .. } => true,
                Trap::UnboundLabel { .. } | Trap::BadDispatch { .. } => false,
            }
        }
        let all = [
            Trap::OutOfFuel { budget: 1 },
            Trap::CallDepth { limit: 1 },
            Trap::SyntaxDepth { limit: 1 },
            Trap::UnfoldDepth { limit: 1 },
            Trap::Heap { limit: 1 },
            Trap::Residual { limit: 1 },
            Trap::StaticDivergence { witness: "w".into() },
            Trap::UnboundLabel { label: "f".into(), pc: 0 },
            Trap::BadDispatch { pc: 0, detail: "int".into() },
        ];
        for t in &all {
            assert_eq!(t.is_budget(), degrades(t), "{t}");
            assert_eq!(t.class() != TrapClass::Machine, degrades(t), "{t}");
        }
        // The variants above cover every class, and every class
        // renders with a unique stable name.
        let classes: std::collections::BTreeSet<TrapClass> =
            all.iter().map(Trap::class).collect();
        assert_eq!(classes.len(), TrapClass::ALL.len());
        let mut names = std::collections::HashSet::new();
        for c in TrapClass::ALL {
            assert!(names.insert(c.name()), "duplicate class name {c}");
        }
    }

    #[test]
    fn strict_is_tighter_than_default() {
        let s = Limits::strict();
        let d = Limits::default();
        assert!(s.fuel < d.fuel);
        assert!(s.max_call_depth < d.max_call_depth);
        assert!(s.max_syntax_depth < d.max_syntax_depth);
        assert!(s.max_heap < d.max_heap);
        assert!(s.max_residual < d.max_residual);
    }
}
