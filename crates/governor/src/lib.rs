//! The pipeline-wide resource governor.
//!
//! Partial evaluation runs programs *at compile time* — the reducer
//! unfolds calls, the specializer enumerates configurations, the VM and
//! the interpreter family execute residual and subject code — so any
//! divergent, deeply recursive or adversarial input can hang or abort
//! compilation unless every engine is metered.  This crate is the one
//! shared vocabulary for that metering:
//!
//! * [`Limits`] — the budgets themselves: evaluation steps, host-stack
//!   call depth, syntactic nesting, static unfolding depth, heap cells,
//!   residual program size.  Every public entry point in the workspace
//!   accepts a `Limits` (directly or via an options struct).
//! * [`Fuel`] — a running meter over one `Limits`, shared by the engines
//!   that need incremental accounting.
//! * [`Trap`] — the structured error raised when a budget is exhausted
//!   or an execution-model invariant is violated, designed so callers
//!   can distinguish "the input diverges" from "the engine is broken".
//!
//! The crate sits below `pe-sexpr` in the dependency graph (the reader
//! is itself a governed entry point) and is re-exported by `pe-interp`
//! and `pe-core`, so downstream users never import it directly.

use std::fmt;

/// Resource budgets shared by every pipeline entry point.
///
/// The defaults are generous enough for the full benchmark suite at
/// test sizes; adversarial callers tighten the relevant field (struct
/// update syntax keeps call sites stable):
///
/// ```
/// use pe_governor::Limits;
/// let strict = Limits { fuel: 10_000, max_call_depth: 1_000, ..Limits::default() };
/// assert!(strict.fuel < Limits::default().fuel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of evaluation steps (calls / machine transitions).
    pub fuel: u64,
    /// Maximum host-stack recursion depth for the engines that model a
    /// native stack (the Fig. 3/Fig. 4 interpreters, the Hobbit-like
    /// baseline).  The flat machines (tail interpreter, S₀ evaluator,
    /// VM) never grow the host stack and ignore this field.  A trap at
    /// this depth is only useful if the host stack can actually hold
    /// that many frames — run deep programs under a big-stack worker or
    /// lower the cap to match the thread you are on.
    pub max_call_depth: usize,
    /// Maximum syntactic nesting depth accepted by the S-expression
    /// reader (and hence by every parser above it).
    pub max_syntax_depth: usize,
    /// Maximum static unfolding depth in the specializers (`pe-core`'s
    /// inlining and `pe-unmix`'s call unfolding).
    pub max_unfold_depth: usize,
    /// Maximum heap cells (pairs, closures, reader nodes) an engine may
    /// allocate on behalf of the subject program.
    pub max_heap: u64,
    /// Maximum residual output size (residual procedures) a specializer
    /// may emit before giving up.
    pub max_residual: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            fuel: 500_000_000,
            max_call_depth: 500_000,
            max_syntax_depth: 1_000,
            max_unfold_depth: 300,
            max_heap: 100_000_000,
            max_residual: 50_000,
        }
    }
}

impl Limits {
    /// A tight budget for adversarial or untrusted input: everything is
    /// small enough that a divergent program traps in well under a
    /// second without exhausting memory or the host stack of an
    /// ordinary thread.
    #[must_use]
    pub fn strict() -> Limits {
        Limits {
            fuel: 1_000_000,
            max_call_depth: 2_000,
            max_syntax_depth: 200,
            max_unfold_depth: 100,
            max_heap: 1_000_000,
            max_residual: 1_000,
        }
    }
}

/// A structured resource/execution trap.
///
/// The budget variants (`OutOfFuel`, `CallDepth`, `SyntaxDepth`,
/// `UnfoldDepth`, `Heap`, `Residual`) mean the *input* exceeded a
/// configured bound; the machine variants (`UnboundLabel`,
/// `BadDispatch`) mean a compiled program broke an execution-model
/// invariant and carry the program counter for diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The step budget ([`Limits::fuel`]) was exhausted.
    OutOfFuel { budget: u64 },
    /// Host-stack recursion exceeded [`Limits::max_call_depth`].
    CallDepth { limit: usize },
    /// Syntactic nesting exceeded [`Limits::max_syntax_depth`].
    SyntaxDepth { limit: usize },
    /// Static unfolding exceeded [`Limits::max_unfold_depth`].
    UnfoldDepth { limit: usize },
    /// Heap allocation exceeded [`Limits::max_heap`] cells.
    Heap { limit: u64 },
    /// Residual output exceeded [`Limits::max_residual`] procedures.
    Residual { limit: usize },
    /// A jump targeted a label that is not defined in the loaded
    /// program (`pc` is the block the machine was executing).
    UnboundLabel { label: String, pc: usize },
    /// A closure dispatch found something other than a well-formed
    /// closure (`pc` is the block the machine was executing).
    BadDispatch { pc: usize, detail: String },
    /// Static analysis proved the program diverges on every input, so
    /// it was refused before any fuel was spent.  `witness` names the
    /// offending cycle.
    StaticDivergence { witness: String },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfFuel { budget } => {
                write!(f, "step budget of {budget} exhausted")
            }
            Trap::CallDepth { limit } => {
                write!(f, "call depth limit of {limit} exceeded")
            }
            Trap::SyntaxDepth { limit } => {
                write!(f, "syntax nesting limit of {limit} exceeded")
            }
            Trap::UnfoldDepth { limit } => {
                write!(f, "static unfolding limit of {limit} exceeded")
            }
            Trap::Heap { limit } => {
                write!(f, "heap limit of {limit} cells exceeded")
            }
            Trap::Residual { limit } => {
                write!(f, "residual output limit of {limit} procedures exceeded")
            }
            Trap::UnboundLabel { label, pc } => {
                write!(f, "jump to unbound label {label} (pc {pc})")
            }
            Trap::BadDispatch { pc, detail } => {
                write!(f, "bad closure dispatch at pc {pc}: {detail}")
            }
            Trap::StaticDivergence { witness } => {
                write!(f, "program provably diverges: {witness}")
            }
        }
    }
}

impl std::error::Error for Trap {}

/// A running meter over one [`Limits`].
///
/// Engines call [`Fuel::step`] per machine transition, [`Fuel::alloc`]
/// per heap cell, and bracket host-stack recursion with
/// [`Fuel::enter_call`] / [`Fuel::exit_call`]; the first exceeded
/// budget surfaces as a [`Trap`].
#[derive(Debug, Clone)]
pub struct Fuel {
    limits: Limits,
    steps: u64,
    cells: u64,
    depth: usize,
    peak_depth: usize,
}

/// A point-in-time reading of one [`Fuel`] meter — the "metrics at
/// trap time" payload attached to observability gauges.  Depth is the
/// *high-water* mark, not the current depth: by the time a trap has
/// propagated out of a host-stack engine the live depth has already
/// unwound to zero, but the peak is what explains the trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Steps spent so far.
    pub steps: u64,
    /// Heap cells charged so far.
    pub cells: u64,
    /// Deepest host-stack recursion reached.
    pub peak_depth: usize,
}

impl Fuel {
    /// Starts a fresh meter against `limits`.
    #[must_use]
    pub fn new(limits: &Limits) -> Fuel {
        Fuel { limits: *limits, steps: 0, cells: 0, depth: 0, peak_depth: 0 }
    }

    /// The limits this meter enforces.
    #[must_use]
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Charges one evaluation step.
    ///
    /// # Errors
    ///
    /// [`Trap::OutOfFuel`] once [`Limits::fuel`] steps have been spent.
    #[inline]
    pub fn step(&mut self) -> Result<(), Trap> {
        if self.steps >= self.limits.fuel {
            return Err(Trap::OutOfFuel { budget: self.limits.fuel });
        }
        self.steps += 1;
        Ok(())
    }

    /// Charges `cells` heap cells.
    ///
    /// # Errors
    ///
    /// [`Trap::Heap`] once [`Limits::max_heap`] cells are live-charged.
    #[inline]
    pub fn alloc(&mut self, cells: u64) -> Result<(), Trap> {
        self.cells = self.cells.saturating_add(cells);
        if self.cells > self.limits.max_heap {
            return Err(Trap::Heap { limit: self.limits.max_heap });
        }
        Ok(())
    }

    /// Enters one level of host-stack recursion.
    ///
    /// # Errors
    ///
    /// [`Trap::CallDepth`] beyond [`Limits::max_call_depth`] levels.
    #[inline]
    pub fn enter_call(&mut self) -> Result<(), Trap> {
        if self.depth >= self.limits.max_call_depth {
            return Err(Trap::CallDepth { limit: self.limits.max_call_depth });
        }
        self.depth += 1;
        if self.depth > self.peak_depth {
            self.peak_depth = self.depth;
        }
        Ok(())
    }

    /// Leaves one level of host-stack recursion.
    #[inline]
    pub fn exit_call(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Steps spent so far.
    #[must_use]
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Heap cells charged so far.
    #[must_use]
    pub fn cells_used(&self) -> u64 {
        self.cells
    }

    /// Current host-stack recursion depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Deepest host-stack recursion reached over the meter's life.
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// The current meter readings as one value.
    #[must_use]
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot { steps: self.steps, cells: self.cells, peak_depth: self.peak_depth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_meters_steps() {
        let mut f = Fuel::new(&Limits { fuel: 3, ..Limits::default() });
        assert!(f.step().is_ok());
        assert!(f.step().is_ok());
        assert!(f.step().is_ok());
        assert_eq!(f.step(), Err(Trap::OutOfFuel { budget: 3 }));
        assert_eq!(f.steps_used(), 3);
    }

    #[test]
    fn fuel_meters_heap() {
        let mut f = Fuel::new(&Limits { max_heap: 10, ..Limits::default() });
        assert!(f.alloc(10).is_ok());
        assert_eq!(f.alloc(1), Err(Trap::Heap { limit: 10 }));
    }

    #[test]
    fn fuel_meters_depth() {
        let mut f = Fuel::new(&Limits { max_call_depth: 2, ..Limits::default() });
        assert!(f.enter_call().is_ok());
        assert!(f.enter_call().is_ok());
        assert_eq!(f.enter_call(), Err(Trap::CallDepth { limit: 2 }));
        f.exit_call();
        assert!(f.enter_call().is_ok());
        // exit never underflows
        f.exit_call();
        f.exit_call();
        f.exit_call();
        assert_eq!(f.depth(), 0);
    }

    #[test]
    fn snapshot_reports_peak_depth() {
        let mut f = Fuel::new(&Limits::default());
        f.enter_call().unwrap();
        f.enter_call().unwrap();
        f.step().unwrap();
        f.alloc(7).unwrap();
        f.exit_call();
        f.exit_call();
        assert_eq!(f.depth(), 0);
        assert_eq!(
            f.snapshot(),
            MeterSnapshot { steps: 1, cells: 7, peak_depth: 2 }
        );
    }

    #[test]
    fn traps_render() {
        let cases: &[(Trap, &str)] = &[
            (Trap::OutOfFuel { budget: 5 }, "step budget"),
            (Trap::CallDepth { limit: 5 }, "call depth"),
            (Trap::SyntaxDepth { limit: 5 }, "syntax nesting"),
            (Trap::UnfoldDepth { limit: 5 }, "unfolding"),
            (Trap::Heap { limit: 5 }, "heap"),
            (Trap::Residual { limit: 5 }, "residual"),
            (Trap::UnboundLabel { label: "f".into(), pc: 3 }, "unbound label f"),
            (Trap::BadDispatch { pc: 3, detail: "int 5".into() }, "dispatch"),
            (
                Trap::StaticDivergence { witness: "cycle through f".into() },
                "provably diverges: cycle through f",
            ),
        ];
        for (t, needle) in cases {
            assert!(t.to_string().contains(needle), "{t}");
        }
    }

    #[test]
    fn strict_is_tighter_than_default() {
        let s = Limits::strict();
        let d = Limits::default();
        assert!(s.fuel < d.fuel);
        assert!(s.max_call_depth < d.max_call_depth);
        assert!(s.max_syntax_depth < d.max_syntax_depth);
        assert!(s.max_heap < d.max_heap);
        assert!(s.max_residual < d.max_residual);
    }
}
