//! Size-change graphs: the per-call-edge descent facts and their
//! composition algebra.
//!
//! A [`SizeGraph`] records, for one (possibly derived) call from
//! procedure `src` to procedure `dst`, every *guaranteed* size relation
//! between a parameter of the caller and the argument delivered to a
//! parameter of the callee.  Composition (`;`) chains two graphs through
//! a shared middle procedure; the closure module iterates composition to
//! a fixed point.

use pe_frontend::dast::ProcId;
use std::collections::BTreeMap;

/// What kind of strict descent an arc carries.
///
/// The distinction matters for what the specializer may *skip*:
/// structural descent (`car`/`cdr` chains) is well-founded on the finite
/// static data the specializer holds, so bounded-static-variation
/// widening is provably unnecessary along it.  Arithmetic descent
/// (`sub1`, `(- x k)`) is well-founded on naturals but **not** on the
/// full integers the subject language computes with, so it supports a
/// termination verdict only together with the widening backstop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Descent {
    /// Destructor application: the argument is a strict substructure.
    Structural,
    /// Arithmetic decrease by a positive constant.
    Arith,
}

/// The guaranteed relation between a caller parameter and a callee
/// argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rel {
    /// The argument is strictly smaller than the parameter.
    Down(Descent),
    /// The argument is the parameter itself (or provably equal in size).
    Eq,
    /// The argument strictly *contains* (or arithmetically exceeds) the
    /// parameter: an in-situ increase.
    Up,
}

impl Rel {
    /// Sequential composition of two guaranteed relations, `None` when
    /// nothing is guaranteed about the combined step.
    #[must_use]
    pub fn compose(self, other: Rel) -> Option<Rel> {
        use Rel::*;
        match (self, other) {
            // Two descents chain; structural quality survives only if
            // both steps are structural.
            (Down(a), Down(b)) => Some(Down(a.max(b))),
            (Down(d), Eq) | (Eq, Down(d)) => Some(Down(d)),
            (Eq, Eq) => Some(Eq),
            (Up, Up) | (Up, Eq) | (Eq, Up) => Some(Up),
            // A decrease followed by an increase (or vice versa) nets
            // out to nothing provable.
            (Down(_), Up) | (Up, Down(_)) => None,
        }
    }

    /// Merges two relations guaranteed for the *same* arc via different
    /// middle parameters.  Descent claims dominate (they are the ones a
    /// termination argument consumes); conflicting claims collapse to
    /// the weaker guarantee.
    #[must_use]
    pub fn join(self, other: Rel) -> Rel {
        use Rel::*;
        match (self, other) {
            (Down(a), Down(b)) => Down(a.min(b)),
            (Down(d), _) | (_, Down(d)) => Down(d),
            (Eq, Eq) => Eq,
            (Up, Up) => Up,
            (Eq, Up) | (Up, Eq) => Up,
        }
    }
}

/// A size-change graph for one call edge `src → dst`.
///
/// Arcs are keyed by `(caller parameter index, callee parameter index)`.
/// An absent arc means "no guaranteed relation" — the sound default.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SizeGraph {
    /// The calling procedure.
    pub src: ProcId,
    /// The called procedure.
    pub dst: ProcId,
    /// Guaranteed relations, sparse.
    pub arcs: BTreeMap<(u32, u32), Rel>,
}

impl SizeGraph {
    /// An edge with no arcs: the call happens, nothing is known about
    /// sizes (e.g. every argument is the result of another call).
    #[must_use]
    pub fn empty(src: ProcId, dst: ProcId) -> SizeGraph {
        SizeGraph { src, dst, arcs: BTreeMap::new() }
    }

    /// Adds (or strengthens) one arc.
    pub fn add_arc(&mut self, from: u32, to: u32, rel: Rel) {
        self.arcs
            .entry((from, to))
            .and_modify(|r| *r = r.join(rel))
            .or_insert(rel);
    }

    /// Composes `self ; other` (requires `self.dst == other.src`).
    #[must_use]
    pub fn compose(&self, other: &SizeGraph) -> SizeGraph {
        debug_assert_eq!(self.dst, other.src, "composition through a mismatched middle");
        let mut out = SizeGraph::empty(self.src, other.dst);
        for (&(i, j), &r1) in &self.arcs {
            for (&(j2, k), &r2) in &other.arcs {
                if j != j2 {
                    continue;
                }
                if let Some(r) = r1.compose(r2) {
                    out.add_arc(i, k, r);
                }
            }
        }
        out
    }

    /// True when `self ; self == self` — the idempotent self-graphs are
    /// the ones the Lee–Jones–Ben-Amram criterion inspects.
    #[must_use]
    pub fn is_idempotent(&self) -> bool {
        self.src == self.dst && self.compose(self) == *self
    }

    /// The relation this graph guarantees for parameter `i` of a
    /// self-edge, if any.
    #[must_use]
    pub fn self_arc(&self, i: u32) -> Option<Rel> {
        self.arcs.get(&(i, i)).copied()
    }

    /// True when some parameter provably descends in situ.
    #[must_use]
    pub fn has_in_situ_down(&self) -> bool {
        self.arcs
            .iter()
            .any(|(&(i, j), r)| i == j && matches!(r, Rel::Down(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_algebra() {
        use Descent::*;
        use Rel::*;
        assert_eq!(Down(Structural).compose(Down(Structural)), Some(Down(Structural)));
        assert_eq!(Down(Structural).compose(Down(Arith)), Some(Down(Arith)));
        assert_eq!(Down(Arith).compose(Eq), Some(Down(Arith)));
        assert_eq!(Eq.compose(Eq), Some(Eq));
        assert_eq!(Up.compose(Up), Some(Up));
        assert_eq!(Up.compose(Eq), Some(Up));
        assert_eq!(Down(Structural).compose(Up), None);
        assert_eq!(Up.compose(Down(Arith)), None);
    }

    #[test]
    fn graph_composition_threads_the_middle_parameter() {
        use Descent::*;
        use Rel::*;
        let (p, q, r) = (ProcId(0), ProcId(1), ProcId(2));
        let mut g1 = SizeGraph::empty(p, q);
        g1.add_arc(0, 1, Down(Structural));
        let mut g2 = SizeGraph::empty(q, r);
        g2.add_arc(1, 0, Eq);
        g2.add_arc(0, 0, Up);
        let g = g1.compose(&g2);
        assert_eq!(g.arcs.len(), 1);
        assert_eq!(g.arcs.get(&(0, 0)), Some(&Down(Structural)));
    }

    #[test]
    fn idempotence_detects_stable_self_graphs() {
        use Descent::*;
        use Rel::*;
        let p = ProcId(0);
        let mut g = SizeGraph::empty(p, p);
        g.add_arc(0, 0, Down(Structural));
        g.add_arc(1, 1, Eq);
        assert!(g.is_idempotent());
        // A one-shot descent through a *different* slot is not stable.
        let mut h = SizeGraph::empty(p, p);
        h.add_arc(0, 1, Down(Arith));
        assert!(!h.is_idempotent());
    }
}
