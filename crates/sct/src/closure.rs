//! Composition closure of the size-change graph set.
//!
//! The closure contains one graph per *provable multi-step descent
//! pattern*: starting from the syntactic call-edge graphs, every
//! composable pair is composed until no new graph appears.  Termination
//! reasoning then only ever inspects self-graphs (`src == dst`) in the
//! closed set.
//!
//! The closure is exponential in the worst case, so it runs under an
//! explicit budget; a truncated closure degrades every recursive
//! procedure to the `Unknown` verdict rather than over-claiming.

use crate::graph::SizeGraph;
use std::collections::BTreeSet;

/// Closure result: the closed graph set plus effort accounting.
#[derive(Debug, Clone)]
pub struct Closure {
    /// All distinct graphs reachable by composition.
    pub graphs: Vec<SizeGraph>,
    /// Compositions performed (including ones that produced duplicates).
    pub compositions: u64,
    /// True when the budget cut the closure short; verdicts must then
    /// not claim anything beyond `Unknown` for recursive procedures.
    pub truncated: bool,
}

/// How many distinct graphs the closure may hold before truncating.
/// The Gabriel suite needs well under a hundred; the bound only exists
/// so adversarial inputs degrade to `Unknown` instead of burning time.
pub const MAX_GRAPHS: usize = 4096;

/// Computes the composition closure of `initial` under the budget.
#[must_use]
pub fn close(initial: &[SizeGraph]) -> Closure {
    let mut set: BTreeSet<SizeGraph> = initial.iter().cloned().collect();
    let mut work: Vec<SizeGraph> = set.iter().cloned().collect();
    let mut compositions = 0u64;
    let mut truncated = false;
    'outer: while let Some(g) = work.pop() {
        // Compose with every graph currently in the set, on both sides.
        let snapshot: Vec<SizeGraph> = set.iter().cloned().collect();
        for h in &snapshot {
            for composed in [
                (g.dst == h.src).then(|| g.compose(h)),
                (h.dst == g.src).then(|| h.compose(&g)),
            ]
            .into_iter()
            .flatten()
            {
                compositions += 1;
                if set.insert(composed.clone()) {
                    if set.len() > MAX_GRAPHS {
                        truncated = true;
                        break 'outer;
                    }
                    work.push(composed);
                }
            }
        }
    }
    Closure { graphs: set.into_iter().collect(), compositions, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Descent, Rel};
    use pe_frontend::dast::ProcId;

    #[test]
    fn mutual_recursion_composes_to_self_graphs() {
        let (p, q) = (ProcId(0), ProcId(1));
        let mut pq = SizeGraph::empty(p, q);
        pq.add_arc(0, 0, Rel::Up);
        let mut qp = SizeGraph::empty(q, p);
        qp.add_arc(0, 0, Rel::Eq);
        let c = close(&[pq, qp]);
        assert!(!c.truncated);
        // p→p and q→q self-graphs appear, both carrying the increase.
        let pp = c.graphs.iter().find(|g| g.src == p && g.dst == p).unwrap();
        assert_eq!(pp.self_arc(0), Some(Rel::Up));
        let qq = c.graphs.iter().find(|g| g.src == q && g.dst == q).unwrap();
        assert_eq!(qq.self_arc(0), Some(Rel::Up));
    }

    #[test]
    fn closure_is_a_fixed_point() {
        let p = ProcId(0);
        let mut g = SizeGraph::empty(p, p);
        g.add_arc(0, 0, Rel::Down(Descent::Structural));
        g.add_arc(1, 0, Rel::Eq);
        let c = close(&[g]);
        for a in &c.graphs {
            for b in &c.graphs {
                if a.dst == b.src {
                    assert!(c.graphs.contains(&a.compose(b)));
                }
            }
        }
    }
}
