//! Static call-graph construction with size-change arc extraction.
//!
//! One [`SizeGraph`] is built per syntactic call edge.  Calls made from
//! inside lambdas are attributed to the procedure that (transitively)
//! creates the lambda: alpha-renaming makes every `VarId` globally
//! unique, so a free variable captured from the enclosing procedure's
//! frame still *is* that procedure's parameter, and the arc extraction
//! needs no substitution.  An argument that mentions only lambda-local
//! variables (or another call's result) simply yields no arc — the
//! sound "no information" default.

use crate::graph::{Descent, Rel, SizeGraph};
use pe_frontend::ast::{Constant, Prim};
use pe_frontend::dast::{DProgram, LamId, ProcId, SimpleExpr, TailExpr, VarId};
use std::collections::BTreeSet;

/// Builds every size-change graph of the program, in deterministic
/// (procedure, syntax) order.
pub fn build(p: &DProgram) -> Vec<SizeGraph> {
    let mut out = Vec::new();
    for (i, def) in p.defs.iter().enumerate() {
        let src = ProcId(i as u32);
        let params = &def.params;
        // The procedure body, then the bodies of every lambda it
        // transitively creates (closures can be invoked later,
        // transferring control back into this frame's data).
        graphs_in_tail(p, src, params, &def.body, &mut out);
        let mut lams = BTreeSet::new();
        lambdas_created(&def.body, &mut lams);
        let mut work: Vec<LamId> = lams.iter().copied().collect();
        let mut seen = lams;
        while let Some(l) = work.pop() {
            graphs_in_tail(p, src, params, &p.lambda(l).body, &mut out);
            let mut inner = BTreeSet::new();
            lambdas_created(&p.lambda(l).body, &mut inner);
            for x in inner {
                if seen.insert(x) {
                    work.push(x);
                }
            }
        }
    }
    out
}

fn graphs_in_tail(
    p: &DProgram,
    src: ProcId,
    params: &[VarId],
    te: &TailExpr,
    out: &mut Vec<SizeGraph>,
) {
    match te {
        TailExpr::Simple(_) => {}
        TailExpr::If(_, _, t, e) => {
            graphs_in_tail(p, src, params, t, out);
            graphs_in_tail(p, src, params, e, out);
        }
        TailExpr::CallProc(_, pid, args) => {
            let mut g = SizeGraph::empty(src, *pid);
            for (j, arg) in args.iter().enumerate() {
                for (i, rel) in arcs_for_arg(p, params, arg) {
                    g.add_arc(i, j as u32, rel);
                }
            }
            out.push(g);
        }
        TailExpr::PushApp(_, _, body) => graphs_in_tail(p, src, params, body, out),
    }
}

/// The guaranteed relations between caller parameters and one argument
/// expression: `(caller parameter index, relation)` pairs.
fn arcs_for_arg(
    p: &DProgram,
    params: &[VarId],
    arg: &SimpleExpr,
) -> Vec<(u32, Rel)> {
    let param_index = |v: VarId| params.iter().position(|&q| q == v).map(|i| i as u32);
    match arg {
        SimpleExpr::Var(_, v) => match param_index(*v) {
            Some(i) => vec![(i, Rel::Eq)],
            None => Vec::new(),
        },
        SimpleExpr::Const(_, _) => Vec::new(),
        // A closure strictly contains every captured parameter: an
        // in-situ increase for each (the CPS continuation-growing
        // pattern).
        SimpleExpr::Lambda(_, id) => p
            .lambda(*id)
            .freevars
            .iter()
            .filter_map(|&fv| param_index(fv).map(|i| (i, Rel::Up)))
            .collect(),
        SimpleExpr::Prim(_, op, args) => prim_arcs(params, *op, args),
    }
}

fn prim_arcs(
    params: &[VarId],
    op: Prim,
    args: &[SimpleExpr],
) -> Vec<(u32, Rel)> {
    let param_index = |v: VarId| params.iter().position(|&q| q == v).map(|i| i as u32);
    match op {
        // Destructor chains: (car (cdr x)) and friends strip structure.
        Prim::Car | Prim::Cdr => match destructed_var(args) {
            Some(v) => match param_index(v) {
                Some(i) => vec![(i, Rel::Down(Descent::Structural))],
                None => Vec::new(),
            },
            None => Vec::new(),
        },
        Prim::Sub1 => match &args[0] {
            SimpleExpr::Var(_, v) => match param_index(*v) {
                Some(i) => vec![(i, Rel::Down(Descent::Arith))],
                None => Vec::new(),
            },
            _ => Vec::new(),
        },
        Prim::Add1 => match &args[0] {
            SimpleExpr::Var(_, v) => match param_index(*v) {
                Some(i) => vec![(i, Rel::Up)],
                None => Vec::new(),
            },
            _ => Vec::new(),
        },
        Prim::Sub => match (&args[0], &args[1]) {
            (SimpleExpr::Var(_, v), SimpleExpr::Const(_, Constant::Int(k))) => {
                match param_index(*v) {
                    Some(i) if *k > 0 => vec![(i, Rel::Down(Descent::Arith))],
                    Some(i) if *k == 0 => vec![(i, Rel::Eq)],
                    Some(i) => vec![(i, Rel::Up)],
                    None => Vec::new(),
                }
            }
            _ => Vec::new(),
        },
        Prim::Add => {
            let (v, k) = match (&args[0], &args[1]) {
                (SimpleExpr::Var(_, v), SimpleExpr::Const(_, Constant::Int(k)))
                | (SimpleExpr::Const(_, Constant::Int(k)), SimpleExpr::Var(_, v)) => (v, k),
                _ => return Vec::new(),
            };
            match param_index(*v) {
                Some(i) if *k > 0 => vec![(i, Rel::Up)],
                Some(i) if *k == 0 => vec![(i, Rel::Eq)],
                Some(i) => vec![(i, Rel::Down(Descent::Arith))],
                None => Vec::new(),
            }
        }
        // A pair strictly contains every parameter that appears as a
        // *whole* component (the rev-accumulator pattern).  A destructed
        // piece like `(car x)` carries no size guarantee about `x`.
        Prim::Cons => {
            let mut vars = BTreeSet::new();
            for a in args {
                component_vars(a, &mut vars);
            }
            vars.iter().filter_map(|&v| param_index(v).map(|i| (i, Rel::Up))).collect()
        }
        _ => Vec::new(),
    }
}

/// Follows a `car`/`cdr` chain down to the variable it destructs, if
/// the whole chain is destructors over one variable.
fn destructed_var(args: &[SimpleExpr]) -> Option<VarId> {
    match &args[0] {
        SimpleExpr::Var(_, v) => Some(*v),
        SimpleExpr::Prim(_, Prim::Car | Prim::Cdr, inner) => destructed_var(inner),
        _ => None,
    }
}

/// Variables embedded whole in a cons tree: bare variables and
/// variables inside nested `cons` applications, but not destructed or
/// otherwise transformed pieces.
fn component_vars(se: &SimpleExpr, out: &mut BTreeSet<VarId>) {
    match se {
        SimpleExpr::Var(_, v) => {
            out.insert(*v);
        }
        SimpleExpr::Prim(_, Prim::Cons, args) => {
            args.iter().for_each(|a| component_vars(a, out));
        }
        SimpleExpr::Const(_, _) | SimpleExpr::Lambda(_, _) | SimpleExpr::Prim(_, _, _) => {}
    }
}

/// Lambdas created directly by `te` (not through further lambdas).
pub fn lambdas_created(te: &TailExpr, out: &mut BTreeSet<LamId>) {
    fn simple(se: &SimpleExpr, out: &mut BTreeSet<LamId>) {
        match se {
            SimpleExpr::Lambda(_, id) => {
                out.insert(*id);
            }
            SimpleExpr::Prim(_, _, args) => args.iter().for_each(|a| simple(a, out)),
            SimpleExpr::Var(_, _) | SimpleExpr::Const(_, _) => {}
        }
    }
    match te {
        TailExpr::Simple(se) => simple(se, out),
        TailExpr::If(_, c, t, e) => {
            simple(c, out);
            lambdas_created(t, out);
            lambdas_created(e, out);
        }
        TailExpr::CallProc(_, _, args) => args.iter().for_each(|a| simple(a, out)),
        TailExpr::PushApp(_, ctx, body) => {
            simple(ctx, out);
            lambdas_created(body, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::{desugar, parse_source};

    fn graphs(src: &str) -> (DProgram, Vec<SizeGraph>) {
        let p = desugar(&parse_source(src).unwrap()).unwrap();
        let gs = build(&p);
        (p, gs)
    }

    #[test]
    fn structural_descent_from_destructor_chains() {
        let (p, gs) = graphs(
            "(define (deriv e) (if (pair? e) (deriv (car (cdr e))) e))",
        );
        let d = p.proc_id("deriv").unwrap();
        let selfs: Vec<_> = gs.iter().filter(|g| g.src == d && g.dst == d).collect();
        assert_eq!(selfs.len(), 1);
        assert_eq!(selfs[0].self_arc(0), Some(Rel::Down(Descent::Structural)));
    }

    #[test]
    fn arith_descent_and_increase() {
        let (p, gs) = graphs(
            "(define (f n) (if (zero? n) 0 (f (- n 1))))
             (define (g n) (if (zero? n) 0 (g (+ n 1))))",
        );
        let f = p.proc_id("f").unwrap();
        let g = p.proc_id("g").unwrap();
        let fg = gs.iter().find(|x| x.src == f && x.dst == f).unwrap();
        assert_eq!(fg.self_arc(0), Some(Rel::Down(Descent::Arith)));
        let gg = gs.iter().find(|x| x.src == g && x.dst == g).unwrap();
        assert_eq!(gg.self_arc(0), Some(Rel::Up));
    }

    #[test]
    fn closure_capture_counts_as_increase() {
        let (p, gs) = graphs(
            "(define (fib-k n k)
               (if (< n 2) (k n)
                   (fib-k (- n 1) (lambda (f1) (fib-k (- n 2) (lambda (f2) (k (+ f1 f2))))))))",
        );
        let f = p.proc_id("fib-k").unwrap();
        // The outer recursive call: n descends, the new continuation
        // captures k (an in-situ increase on slot 1).
        assert!(gs
            .iter()
            .any(|g| g.src == f
                && g.dst == f
                && g.self_arc(0) == Some(Rel::Down(Descent::Arith))
                && g.self_arc(1) == Some(Rel::Up)));
    }

    #[test]
    fn call_results_yield_no_arcs() {
        let (p, gs) = graphs(
            "(define (tak x y z)
               (if (not (< y x)) z
                   (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))",
        );
        let t = p.proc_id("tak").unwrap();
        // The outer call's arguments are all results of inner calls
        // (desugared to context-lambda parameters): no arcs at all.
        assert!(gs.iter().any(|g| g.src == t && g.dst == t && g.arcs.is_empty()));
        // The innermost call still relates the rotated parameters.
        assert!(gs
            .iter()
            .any(|g| g.src == t && g.dst == t && g.arcs.get(&(2, 0)) == Some(&Rel::Down(Descent::Arith))));
    }
}
