//! # pe-sct — size-change termination analysis for specialization control
//!
//! The specializer of this repository controls unfolding *dynamically*:
//! memo tables detect repetition, §4.5 generalization catches
//! self-embedding data, bounded-static-variation widening caps slot
//! variety, and the governor's fuel backstops everything.  This crate
//! moves part of that control *before* specialization, in the style of
//! Lee–Jones–Ben-Amram size-change termination:
//!
//! 1. [`callgraph`] builds one size-change graph per syntactic call
//!    edge of the desugared program, with descent facts read off
//!    destructor chains (`car`/`cdr` ⇒ structural descent), arithmetic
//!    patterns (`sub1`, `(- x k)` ⇒ arithmetic descent; `add1`,
//!    `(+ x k)` ⇒ increase), and constructor/closure embedding
//!    (`cons`, `lambda` capture ⇒ in-situ increase).
//! 2. [`closure`] closes the graph set under composition (budgeted).
//! 3. [`verdict`] classifies every specialization-point candidate as
//!    **bounded** (static data provably descends), **unbounded**
//!    (provable in-situ increase on a cycle — generalize eagerly), or
//!    **unknown** (keep the dynamic machinery), and derives the
//!    slot-level annotation tables the specializer consumes.
//! 4. [`reject`] detects two provably-divergent-on-every-input shapes
//!    (unconditional call cycles, unconditional self-application
//!    cycles) so hostile programs are refused with a structured
//!    [`Trap`] before any fuel is spent.
//!
//! The verdicts deliberately under-claim: arithmetic descent yields
//! `Bounded` (the procedure terminates on the naturals the benchmarks
//! compute with) but does **not** exempt the slot from widening,
//! because the subject language's integers are not well-founded.

pub mod callgraph;
pub mod closure;
pub mod graph;
pub mod reject;
pub mod verdict;

pub use graph::{Descent, Rel, SizeGraph};
pub use verdict::{Verdict, Verdicts};

use pe_frontend::dast::DProgram;
use pe_frontend::flow::FlowAnalysis;
use pe_governor::Trap;

/// Effort accounting for one analysis run (flushed to pe-trace
/// counters by the compiler).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SctStats {
    /// Size-change graphs built from syntactic call edges.
    pub graphs: u64,
    /// Graph compositions performed while closing.
    pub compositions: u64,
    /// Procedures classified `Bounded`.
    pub bounded: u64,
    /// Procedures classified `Unbounded`.
    pub unbounded: u64,
    /// Procedures classified `Unknown`.
    pub unknown: u64,
}

/// The complete analysis result for one program and entry point.
#[derive(Debug, Clone)]
pub struct SctAnalysis {
    /// Per-procedure and per-label verdicts plus slot annotations.
    pub verdicts: Verdicts,
    /// Effort and classification counts.
    pub stats: SctStats,
    /// `Some` when the program provably diverges from `entry` on every
    /// input; the compiler refuses it before specializing.
    pub divergence: Option<Trap>,
}

impl SctAnalysis {
    /// Per-procedure verdicts paired with procedure names, in program
    /// order (the report shape used by `pe-explain -- --sct`).
    #[must_use]
    pub fn named_verdicts<'p>(&self, p: &'p DProgram) -> Vec<(&'p str, Verdict)> {
        p.defs
            .iter()
            .zip(&self.verdicts.procs)
            .map(|(d, &v)| (&*d.name, v))
            .collect()
    }
}

/// Runs the full analysis: graphs, closure, verdicts, early reject.
#[must_use]
pub fn analyze(p: &DProgram, flow: &FlowAnalysis, entry: &str) -> SctAnalysis {
    let graphs = callgraph::build(p);
    let closed = closure::close(&graphs);
    let verdicts = verdict::classify(p, &closed);
    let mut stats = SctStats {
        graphs: graphs.len() as u64,
        compositions: closed.compositions,
        ..SctStats::default()
    };
    for v in &verdicts.procs {
        match v {
            Verdict::Bounded => stats.bounded += 1,
            Verdict::Unbounded => stats.unbounded += 1,
            Verdict::Unknown => stats.unknown += 1,
        }
    }
    let divergence = reject::check(p, flow, entry);
    SctAnalysis { verdicts, stats, divergence }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::{desugar, parse_source};

    fn run(src: &str, entry: &str) -> (DProgram, SctAnalysis) {
        let p = desugar(&parse_source(src).unwrap()).unwrap();
        let f = FlowAnalysis::analyze(&p);
        let a = analyze(&p, &f, entry);
        (p, a)
    }

    #[test]
    fn analysis_is_deterministic() {
        let src = "(define (append x y) (cps-append x y (lambda (v) v)))
                   (define (cps-append x y c)
                     (if (null? x) (c y)
                         (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";
        let (p1, a1) = run(src, "append");
        let (_, a2) = run(src, "append");
        assert_eq!(a1.verdicts.procs, a2.verdicts.procs);
        assert_eq!(a1.stats, a2.stats);
        assert_eq!(a1.named_verdicts(&p1), a2.named_verdicts(&p1));
    }

    #[test]
    fn cps_append_is_bounded_with_structural_exemption() {
        let (p, a) = run(
            "(define (append x y) (cps-append x y (lambda (v) v)))
             (define (cps-append x y c)
               (if (null? x) (c y)
                   (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
            "append",
        );
        let cps = p.proc_id("cps-append").unwrap();
        assert_eq!(a.verdicts.procs[cps.0 as usize], Verdict::Bounded);
        // x structurally descends on the only cycle; the continuation
        // grows (closure capture) and is flagged eager.
        let params = &p.proc(cps).params;
        assert!(a.verdicts.exempt_vars.contains(&params[0]));
        assert!(a.verdicts.eager_vars.contains(&params[2]));
        assert!(a.divergence.is_none());
    }

    #[test]
    fn stats_cover_every_procedure() {
        let (p, a) = run(
            "(define (f n) (if (zero? n) 0 (g (- n 1))))
             (define (g n) (if (zero? n) 1 (f (- n 1))))
             (define (main n) (f n))",
            "main",
        );
        assert_eq!(
            a.stats.bounded + a.stats.unbounded + a.stats.unknown,
            p.defs.len() as u64
        );
        assert!(a.stats.graphs >= 3);
        assert!(a.stats.compositions > 0);
    }
}
