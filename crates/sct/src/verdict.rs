//! The verdict lattice and the per-point annotation tables consumed by
//! the specializer.
//!
//! Classification is per procedure, then broadcast to every
//! specialization-point candidate label the procedure owns (its body
//! and the bodies of lambdas it transitively creates — the labels the
//! specializer can reach while holding this frame's data).

use crate::callgraph::lambdas_created;
use crate::closure::Closure;
use crate::graph::{Descent, Rel, SizeGraph};
use pe_frontend::dast::{DProgram, ProcId, SimpleExpr, TailExpr, VarId};
use pe_intern::FxHashMap;
use std::collections::BTreeSet;
use std::fmt;

/// The three-point classification of a specialization-point candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Verdict {
    /// Static data provably descends on every recursive path (or the
    /// procedure is not recursive at all): safe to unfold.  Only
    /// *structural* descent additionally exempts a slot from widening —
    /// arithmetic descent keeps the widening backstop because the
    /// integers are not well-founded.
    Bounded,
    /// A provable in-situ increase on a cycle: the specializer should
    /// generalize eagerly instead of discovering self-embedding (or
    /// slot growth) at depth.
    Unbounded,
    /// Neither provable: keep the dynamic control machinery.
    Unknown,
}

impl Verdict {
    /// Stable lowercase name used in reports and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Bounded => "bounded",
            Verdict::Unbounded => "unbounded",
            Verdict::Unknown => "unknown",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything classification produces, per procedure and per label.
#[derive(Debug, Clone, Default)]
pub struct Verdicts {
    /// Per-procedure verdicts, indexed by `ProcId.0`.
    pub procs: Vec<Verdict>,
    /// Per-label verdicts for every specialization-point candidate,
    /// keyed by `DLabel.0` (labels inherit their owning procedure's
    /// verdict).
    pub labels: FxHashMap<u32, Verdict>,
    /// Parameters provably descending *structurally* on every cycle
    /// through their procedure (or belonging to a non-recursive
    /// procedure): bounded-static-variation tracking is unnecessary
    /// for these slots.
    pub exempt_vars: BTreeSet<VarId>,
    /// Parameters with a provable in-situ increase on some cycle:
    /// pre-annotated generalization points.
    pub eager_vars: BTreeSet<VarId>,
    /// Labels owned by procedures on a call-graph cycle: the context
    /// stack may grow there, so a flush at such a label is a statically
    /// anticipated generalization, not a dynamic discovery.
    pub stack_labels: BTreeSet<u32>,
}

impl Verdicts {
    /// The verdict at a label, `Unknown` when unattributed.
    #[must_use]
    pub fn at_label(&self, label: u32) -> Verdict {
        self.labels.get(&label).copied().unwrap_or(Verdict::Unknown)
    }
}

/// Classifies every procedure from the closed graph set.
#[must_use]
pub fn classify(p: &DProgram, closure: &Closure) -> Verdicts {
    let n = p.defs.len();
    let mut v = Verdicts { procs: vec![Verdict::Bounded; n], ..Verdicts::default() };
    for (i, def) in p.defs.iter().enumerate() {
        let pid = ProcId(i as u32);
        let selfs: Vec<&SizeGraph> =
            closure.graphs.iter().filter(|g| g.src == pid && g.dst == pid).collect();
        let verdict = if selfs.is_empty() {
            // Not on any call cycle: unfolding this procedure cannot
            // recurse, every parameter slot is demand-bounded by its
            // callers.
            v.exempt_vars.extend(def.params.iter().copied());
            Verdict::Bounded
        } else if closure.truncated {
            Verdict::Unknown
        } else {
            classify_recursive(def.params.len(), &selfs)
        };
        if !selfs.is_empty() && !closure.truncated {
            // Slot-level annotations, independent of the verdict: a slot
            // that structurally descends through *every* cycle never
            // accumulates variety; a slot that provably grows in situ on
            // *some* cycle should be generalized on sight.
            for (slot, &param) in def.params.iter().enumerate() {
                let slot = slot as u32;
                if selfs
                    .iter()
                    .all(|g| g.self_arc(slot) == Some(Rel::Down(Descent::Structural)))
                {
                    v.exempt_vars.insert(param);
                }
                if selfs.iter().any(|g| g.self_arc(slot) == Some(Rel::Up)) {
                    v.eager_vars.insert(param);
                }
            }
        }
        v.procs[i] = verdict;
        let recursive = !selfs.is_empty();
        for label in labels_owned(p, pid) {
            v.labels.insert(label, verdict);
            if recursive {
                v.stack_labels.insert(label);
            }
        }
    }
    v
}

/// The Lee–Jones–Ben-Amram criterion over one procedure's self-graphs:
/// terminating iff every *idempotent* self-graph has an in-situ strict
/// descent.  Failing that, a provable in-situ increase yields
/// `Unbounded`; otherwise nothing is provable either way.
fn classify_recursive(arity: usize, selfs: &[&SizeGraph]) -> Verdict {
    let terminating = selfs
        .iter()
        .filter(|g| g.is_idempotent())
        .all(|g| g.has_in_situ_down());
    if terminating {
        return Verdict::Bounded;
    }
    let grows = selfs
        .iter()
        .any(|g| (0..arity as u32).any(|i| g.self_arc(i) == Some(Rel::Up)));
    if grows {
        Verdict::Unbounded
    } else {
        Verdict::Unknown
    }
}

/// Every syntax label owned by `pid`: its body's labels plus the labels
/// of every lambda body it transitively creates.
fn labels_owned(p: &DProgram, pid: ProcId) -> BTreeSet<u32> {
    let mut labels = BTreeSet::new();
    let body = &p.proc(pid).body;
    labels_in_tail(body, &mut labels);
    let mut lams = BTreeSet::new();
    lambdas_created(body, &mut lams);
    let mut work: Vec<_> = lams.iter().copied().collect();
    let mut seen = lams;
    while let Some(l) = work.pop() {
        labels_in_tail(&p.lambda(l).body, &mut labels);
        let mut inner = BTreeSet::new();
        lambdas_created(&p.lambda(l).body, &mut inner);
        for x in inner {
            if seen.insert(x) {
                work.push(x);
            }
        }
    }
    labels
}

fn labels_in_tail(te: &TailExpr, out: &mut BTreeSet<u32>) {
    out.insert(te.label().0);
    match te {
        TailExpr::Simple(se) => labels_in_simple(se, out),
        TailExpr::If(_, c, t, e) => {
            labels_in_simple(c, out);
            labels_in_tail(t, out);
            labels_in_tail(e, out);
        }
        TailExpr::CallProc(_, _, args) => args.iter().for_each(|a| labels_in_simple(a, out)),
        TailExpr::PushApp(_, ctx, body) => {
            labels_in_simple(ctx, out);
            labels_in_tail(body, out);
        }
    }
}

fn labels_in_simple(se: &SimpleExpr, out: &mut BTreeSet<u32>) {
    match se {
        SimpleExpr::Var(l, _) | SimpleExpr::Const(l, _) | SimpleExpr::Lambda(l, _) => {
            out.insert(l.0);
        }
        SimpleExpr::Prim(l, _, args) => {
            out.insert(l.0);
            args.iter().for_each(|a| labels_in_simple(a, out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{callgraph, closure};
    use pe_frontend::{desugar, parse_source};

    fn verdicts(src: &str) -> (DProgram, Verdicts) {
        let p = desugar(&parse_source(src).unwrap()).unwrap();
        let graphs = callgraph::build(&p);
        let closed = closure::close(&graphs);
        let v = classify(&p, &closed);
        (p, v)
    }

    #[test]
    fn structural_descent_is_bounded_and_exempt() {
        let (p, v) = verdicts(
            "(define (deriv e) (if (pair? e) (deriv (car (cdr e))) e))",
        );
        let d = p.proc_id("deriv").unwrap();
        assert_eq!(v.procs[d.0 as usize], Verdict::Bounded);
        let e = p.proc(d).params[0];
        assert!(v.exempt_vars.contains(&e));
        assert!(v.eager_vars.is_empty());
    }

    #[test]
    fn arith_descent_is_bounded_but_not_exempt() {
        let (p, v) = verdicts("(define (f n) (if (zero? n) 0 (f (- n 1))))");
        let f = p.proc_id("f").unwrap();
        assert_eq!(v.procs[f.0 as usize], Verdict::Bounded);
        let n = p.proc(f).params[0];
        assert!(!v.exempt_vars.contains(&n), "integers are not well-founded");
    }

    #[test]
    fn in_situ_increase_is_unbounded_and_eager() {
        let (p, v) = verdicts(
            "(define (ping n) (pong (+ n 1)))
             (define (pong n) (ping (+ n 1)))",
        );
        let ping = p.proc_id("ping").unwrap();
        assert_eq!(v.procs[ping.0 as usize], Verdict::Unbounded);
        assert!(v.eager_vars.contains(&p.proc(ping).params[0]));
    }

    #[test]
    fn guarded_growth_is_unbounded_not_rejected_material() {
        // The faultline static-divergence pattern: a static counter
        // grows around a dynamic loop.
        let (p, v) = verdicts("(define (f x n) (if (zero? n) x (f x (+ n 1))))");
        let f = p.proc_id("f").unwrap();
        assert_eq!(v.procs[f.0 as usize], Verdict::Unbounded);
        assert!(v.eager_vars.contains(&p.proc(f).params[1]));
        // x is carried through unchanged: Eq arcs only, no exemption
        // and no eagerness.
        assert!(!v.eager_vars.contains(&p.proc(f).params[0]));
    }

    #[test]
    fn no_information_cycles_are_unknown() {
        let (p, v) = verdicts(
            "(define (tak x y z)
               (if (not (< y x)) z
                   (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))",
        );
        let t = p.proc_id("tak").unwrap();
        // The outer call passes three call results: an arc-free
        // self-graph survives in the closure, so nothing is provable.
        assert_eq!(v.procs[t.0 as usize], Verdict::Unknown);
    }

    #[test]
    fn non_recursive_procs_are_bounded_with_exempt_params() {
        let (p, v) = verdicts("(define (g x) x) (define (f x) (g (g x)))");
        for d in &p.defs {
            let pid = p.proc_id(&d.name).unwrap();
            assert_eq!(v.procs[pid.0 as usize], Verdict::Bounded);
            assert!(v.exempt_vars.contains(&d.params[0]));
        }
        assert!(v.stack_labels.is_empty());
    }

    #[test]
    fn labels_inherit_their_owners_verdict() {
        let (p, v) = verdicts(
            "(define (ping n) (pong (+ n 1)))
             (define (pong n) (ping (+ n 1)))",
        );
        let ping = p.proc_id("ping").unwrap();
        let label = p.proc(ping).body.label().0;
        assert_eq!(v.at_label(label), Verdict::Unbounded);
        assert!(v.stack_labels.contains(&label));
        assert_eq!(v.at_label(9_999_999), Verdict::Unknown);
    }
}
