//! Early rejection of programs that provably diverge under *any* input
//! — static or dynamic — so specialization never burns fuel on them.
//!
//! Two syntactic-plus-flow criteria, both deliberately conservative
//! (no false rejects; plenty of divergent programs pass):
//!
//! 1. **Unconditional call cycle**: a cycle in the procedure call graph
//!    restricted to calls in unconditional position (not under any
//!    `if`), itself reachable from the entry through unconditional
//!    calls only.  Entering any procedure on the cycle loops forever
//!    regardless of data — the mutual-recursion divergence pattern.
//! 2. **Self-application cycle**: a lambda that unconditionally applies
//!    its own parameter, where the flow analysis says the argument can
//!    be a lambda doing the same, closing a cycle — the Ω combinator.

use pe_frontend::dast::{DProgram, LamId, ProcId, SimpleExpr, TailExpr};
use pe_frontend::flow::FlowAnalysis;
use pe_governor::Trap;
use std::collections::BTreeSet;

/// Checks both criteria; `Some(trap)` means the program cannot
/// terminate when `entry` is invoked.
#[must_use]
pub fn check(p: &DProgram, flow: &FlowAnalysis, entry: &str) -> Option<Trap> {
    let pid = p.proc_id(entry)?;
    if let Some(name) = unconditional_cycle(p, pid) {
        return Some(Trap::StaticDivergence {
            witness: format!("unconditional call cycle through procedure {name}"),
        });
    }
    if let Some(lam) = self_application_cycle(p, flow, pid) {
        return Some(Trap::StaticDivergence {
            witness: format!("unconditional self-application cycle through lambda #{}", lam.0),
        });
    }
    None
}

/// Criterion 1.  Returns the name of a witness procedure on the cycle.
fn unconditional_cycle(p: &DProgram, entry: ProcId) -> Option<String> {
    let n = p.defs.len();
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (i, d) in p.defs.iter().enumerate() {
        unconditional_calls(&d.body, &mut edges[i]);
    }
    // Procedures reachable from the entry through unconditional calls.
    let mut reach = BTreeSet::new();
    let mut work = vec![entry.0 as usize];
    while let Some(i) = work.pop() {
        if !reach.insert(i) {
            continue;
        }
        work.extend(edges[i].iter().copied());
    }
    // Any reachable procedure that unconditionally reaches itself.
    for &i in &reach {
        let mut seen = BTreeSet::new();
        let mut work: Vec<usize> = edges[i].iter().copied().collect();
        while let Some(j) = work.pop() {
            if j == i {
                return Some(p.defs[i].name.to_string());
            }
            if seen.insert(j) {
                work.extend(edges[j].iter().copied());
            }
        }
    }
    None
}

/// Calls performed on every execution of `te`: a pushed context's body
/// runs unconditionally, an `if` makes both branches conditional, and
/// calls inside pushed *lambdas* run only via application (handled by
/// criterion 2).
fn unconditional_calls(te: &TailExpr, out: &mut BTreeSet<usize>) {
    match te {
        TailExpr::Simple(_) | TailExpr::If(_, _, _, _) => {}
        TailExpr::CallProc(_, pid, _) => {
            out.insert(pid.0 as usize);
        }
        TailExpr::PushApp(_, _, body) => unconditional_calls(body, out),
    }
}

/// Criterion 2.  Returns a witness lambda on the cycle.
fn self_application_cycle(p: &DProgram, flow: &FlowAnalysis, entry: ProcId) -> Option<LamId> {
    // Lambdas creatable while running from the entry: everything made
    // in reachable procedure bodies, transitively through lambda bodies.
    let mut reachable_procs = BTreeSet::new();
    let mut work = vec![entry.0 as usize];
    while let Some(i) = work.pop() {
        if !reachable_procs.insert(i) {
            continue;
        }
        let mut calls = BTreeSet::new();
        all_calls(&p.defs[i].body, &mut calls);
        let mut lams = BTreeSet::new();
        crate::callgraph::lambdas_created(&p.defs[i].body, &mut lams);
        let mut lwork: Vec<LamId> = lams.iter().copied().collect();
        let mut lseen = lams;
        while let Some(l) = lwork.pop() {
            all_calls(&p.lambda(l).body, &mut calls);
            let mut inner = BTreeSet::new();
            crate::callgraph::lambdas_created(&p.lambda(l).body, &mut inner);
            for x in inner {
                if lseen.insert(x) {
                    lwork.push(x);
                }
            }
        }
        work.extend(calls);
    }
    let mut reachable_lams: BTreeSet<LamId> = BTreeSet::new();
    for &i in &reachable_procs {
        let mut lams = BTreeSet::new();
        crate::callgraph::lambdas_created(&p.defs[i].body, &mut lams);
        let mut lwork: Vec<LamId> = lams.iter().copied().collect();
        reachable_lams.extend(lams.iter().copied());
        while let Some(l) = lwork.pop() {
            let mut inner = BTreeSet::new();
            crate::callgraph::lambdas_created(&p.lambda(l).body, &mut inner);
            for x in inner {
                if reachable_lams.insert(x) {
                    lwork.push(x);
                }
            }
        }
    }

    // Edge a → b: λa unconditionally applies its own parameter with a
    // guard-free delivery, and λb may flow into that parameter.
    let mut edges: Vec<(LamId, Vec<LamId>)> = Vec::new();
    for &a in &reachable_lams {
        let def = p.lambda(a);
        if applies_own_param(&def.body, def.param) {
            let cands: Vec<LamId> = flow
                .var_lambdas(def.param)
                .iter()
                .filter(|b| reachable_lams.contains(b))
                .collect();
            if !cands.is_empty() {
                edges.push((a, cands));
            }
        }
    }
    // Cycle detection over those edges.
    for &(start, _) in &edges {
        let mut seen = BTreeSet::new();
        let mut work: Vec<LamId> =
            edges.iter().find(|(a, _)| *a == start).map(|(_, c)| c.clone()).unwrap_or_default();
        while let Some(l) = work.pop() {
            if l == start {
                return Some(start);
            }
            if seen.insert(l) {
                if let Some((_, next)) = edges.iter().find(|(a, _)| *a == l) {
                    work.extend(next.iter().copied());
                }
            }
        }
    }
    None
}

/// True when `te` pushes `param` as an evaluation context along its
/// unconditional spine, with a delivery subtree that cannot branch or
/// call out — the application is then inevitable.
fn applies_own_param(te: &TailExpr, param: pe_frontend::dast::VarId) -> bool {
    match te {
        TailExpr::Simple(_) | TailExpr::If(_, _, _, _) | TailExpr::CallProc(_, _, _) => false,
        TailExpr::PushApp(_, ctx, body) => {
            let here = matches!(ctx, SimpleExpr::Var(_, v) if *v == param)
                && delivery_is_unguarded(body);
            here || applies_own_param(body, param)
        }
    }
}

/// True when every path through `te` produces a value without passing a
/// conditional or a procedure call.
fn delivery_is_unguarded(te: &TailExpr) -> bool {
    match te {
        TailExpr::Simple(_) => true,
        TailExpr::If(_, _, _, _) | TailExpr::CallProc(_, _, _) => false,
        TailExpr::PushApp(_, _, body) => delivery_is_unguarded(body),
    }
}

fn all_calls(te: &TailExpr, out: &mut BTreeSet<usize>) {
    match te {
        TailExpr::Simple(_) => {}
        TailExpr::If(_, _, t, e) => {
            all_calls(t, out);
            all_calls(e, out);
        }
        TailExpr::CallProc(_, pid, _) => {
            out.insert(pid.0 as usize);
        }
        TailExpr::PushApp(_, _, body) => all_calls(body, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::{desugar, parse_source};

    fn reject(src: &str, entry: &str) -> Option<Trap> {
        let p = desugar(&parse_source(src).unwrap()).unwrap();
        let f = FlowAnalysis::analyze(&p);
        check(&p, &f, entry)
    }

    #[test]
    fn omega_is_rejected() {
        let t = reject(
            "(define (omega) ((lambda (x) (x x)) (lambda (x) (x x))))",
            "omega",
        );
        assert!(
            matches!(&t, Some(Trap::StaticDivergence { witness }) if witness.contains("self-application")),
            "{t:?}"
        );
    }

    #[test]
    fn mutual_unconditional_recursion_is_rejected() {
        let t = reject(
            "(define (main d) (ping d))
             (define (ping n) (pong (+ n 1)))
             (define (pong n) (ping n))",
            "main",
        );
        assert!(
            matches!(&t, Some(Trap::StaticDivergence { witness }) if witness.contains("call cycle")),
            "{t:?}"
        );
    }

    #[test]
    fn guarded_recursion_is_not_rejected() {
        assert_eq!(
            reject("(define (f x n) (if (zero? n) x (f x (+ n 1))))", "f"),
            None,
            "conditional cycles may terminate at run time"
        );
    }

    #[test]
    fn dead_unconditional_cycle_behind_a_guard_is_not_rejected() {
        assert_eq!(
            reject(
                "(define (boom x) (boom x))
                 (define (f x) (if (zero? 0) (+ x 1) (boom x)))",
                "f",
            ),
            None,
            "the cycle is only conditionally reachable"
        );
    }

    #[test]
    fn terminating_self_application_is_not_rejected() {
        // (x x) where x can only be a lambda that ignores its argument.
        assert_eq!(
            reject(
                "(define (f) ((lambda (x) (x x)) (lambda (y) 1)))",
                "f",
            ),
            None
        );
    }

    #[test]
    fn cps_programs_are_not_rejected() {
        assert_eq!(
            reject(
                "(define (append x y) (cps-append x y (lambda (v) v)))
                 (define (cps-append x y c)
                   (if (null? x) (c y)
                       (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
                "append",
            ),
            None
        );
    }
}
