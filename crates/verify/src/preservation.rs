//! Pass 3 — the language-preservation certificate (§4).
//!
//! The paper's central property: residual programs are first-order and
//! tail-recursive *because the interpreter is*.  Inside this codebase
//! the property is enforced by the `S0Tail`/`S0Simple` types, so a check
//! over the typed AST would be vacuous.  This pass therefore certifies
//! the property on the **concrete syntax**: the residual program is
//! pretty-printed, read back as S-expressions, and validated against the
//! S₀ grammar
//!
//! ```text
//! proc ::= (define (P V*) T)
//! T    ::= S | (if S T T) | (P S*) | (%fail "msg")
//! S    ::= V | K | (O S*) | (make-closure ℓ S*)
//!        | (closure-label S) | (closure-freeval S i)
//! ```
//!
//! independently of the Rust type structure.  A `lambda`, a computed
//! application, or a call in simple (non-tail) position is a certificate
//! failure — and the same checker doubles as a mutation oracle for
//! arbitrary source text via [`check_source`].

use crate::report::{Diagnostic, Pass};
use pe_core::S0Program;
use pe_frontend::ast::Prim;
use pe_sexpr::Sexpr;
use std::collections::HashMap;

/// Certifies a compiled program by re-reading its printed form.
pub fn check(p: &S0Program) -> Vec<Diagnostic> {
    check_source(&p.to_source())
}

/// Certifies S₀ concrete syntax directly.
pub fn check_source(src: &str) -> Vec<Diagnostic> {
    let forms = match pe_sexpr::read(src) {
        Ok(f) => f,
        Err(e) => {
            return vec![Diagnostic::error(
                Pass::Preservation,
                None,
                format!("residual program does not parse: {e}"),
            )]
        }
    };
    let mut procs: HashMap<String, usize> = HashMap::new();
    for form in &forms {
        if let Some((name, params, _)) = parse_define(form) {
            procs.insert(name.to_string(), params);
        }
    }
    let mut out = Vec::new();
    for form in &forms {
        match parse_define(form) {
            Some((name, _, body)) => check_tail(body, &procs, name, &mut out),
            None => out.push(Diagnostic::error(
                Pass::Preservation,
                None,
                format!("top-level form is not a (define (P V*) T): {form}"),
            )),
        }
    }
    out
}

/// Matches `(define (name params*) body)`; returns name, parameter
/// count and body.
fn parse_define(form: &Sexpr) -> Option<(&str, usize, &Sexpr)> {
    let Sexpr::List(items) = form else { return None };
    let [head, header, body] = items.as_slice() else { return None };
    if head.sym() != Some("define") {
        return None;
    }
    let Sexpr::List(header) = header else { return None };
    let (name, params) = header.split_first()?;
    if !params.iter().all(|p| matches!(p, Sexpr::Sym(_))) {
        return None;
    }
    Some((name.sym()?, params.len(), body))
}

fn check_tail(
    e: &Sexpr,
    procs: &HashMap<String, usize>,
    owner: &str,
    out: &mut Vec<Diagnostic>,
) {
    if let Sexpr::List(items) = e {
        match items.first().and_then(Sexpr::sym) {
            Some("if") => {
                if items.len() != 4 {
                    out.push(err(owner, format!("malformed if: {e}")));
                    return;
                }
                check_simple(&items[1], procs, owner, out);
                check_tail(&items[2], procs, owner, out);
                check_tail(&items[3], procs, owner, out);
                return;
            }
            Some("%fail") => {
                if !(items.len() == 2 && matches!(items[1], Sexpr::Str(_))) {
                    out.push(err(owner, format!("malformed %fail: {e}")));
                }
                return;
            }
            Some(head) if procs.contains_key(head) => {
                let expected = procs[head];
                if items.len() - 1 != expected {
                    out.push(err(
                        owner,
                        format!(
                            "tail call to {head} with {} argument(s), expected {expected}",
                            items.len() - 1
                        ),
                    ));
                }
                for a in &items[1..] {
                    check_simple(a, procs, owner, out);
                }
                return;
            }
            _ => {}
        }
    }
    check_simple(e, procs, owner, out);
}

fn check_simple(
    e: &Sexpr,
    procs: &HashMap<String, usize>,
    owner: &str,
    out: &mut Vec<Diagnostic>,
) {
    let items = match e {
        // Variables and self-evaluating constants.
        Sexpr::Sym(_) | Sexpr::Int(_) | Sexpr::Bool(_) | Sexpr::Char(_) | Sexpr::Str(_) => {
            return;
        }
        Sexpr::List(items) => items,
    };
    let Some(head) = items.first() else {
        out.push(err(owner, "empty application ()".to_string()));
        return;
    };
    let Some(head) = head.sym() else {
        out.push(err(
            owner,
            format!("application of a non-symbol operator (higher-order construct): {e}"),
        ));
        return;
    };
    match head {
        "quote" => {
            if items.len() != 2 {
                out.push(err(owner, format!("malformed quote: {e}")));
            }
        }
        "lambda" => out.push(err(
            owner,
            format!("higher-order construct (lambda) in residual program: {e}"),
        )),
        "if" | "%fail" => out.push(err(
            owner,
            format!("{head} in simple position: tail form violated: {e}"),
        )),
        "make-closure" => {
            if items.len() < 2 || !matches!(items[1], Sexpr::Int(l) if l >= 0) {
                out.push(err(owner, format!("malformed make-closure: {e}")));
                return;
            }
            for a in &items[2..] {
                check_simple(a, procs, owner, out);
            }
        }
        "closure-label" => {
            if items.len() != 2 {
                out.push(err(owner, format!("malformed closure-label: {e}")));
                return;
            }
            check_simple(&items[1], procs, owner, out);
        }
        "closure-freeval" => {
            if items.len() != 3 || !matches!(items[2], Sexpr::Int(i) if i >= 0) {
                out.push(err(owner, format!("malformed closure-freeval: {e}")));
                return;
            }
            check_simple(&items[1], procs, owner, out);
        }
        _ if Prim::from_name(head).is_some() => {
            let expected = Prim::from_name(head).unwrap().arity();
            if items.len() - 1 != expected {
                out.push(err(
                    owner,
                    format!(
                        "primitive {head} applied to {} argument(s), expected {expected}",
                        items.len() - 1
                    ),
                ));
            }
            for a in &items[1..] {
                check_simple(a, procs, owner, out);
            }
        }
        _ if procs.contains_key(head) => out.push(err(
            owner,
            format!("call to {head} in non-tail position: residual program is not tail-recursive"),
        )),
        _ => out.push(err(owner, format!("unknown operator {head}"))),
    }
}

fn err(owner: &str, message: String) -> Diagnostic {
    Diagnostic::error(Pass::Preservation, Some(owner), message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msgs(src: &str) -> Vec<String> {
        check_source(src).iter().map(ToString::to_string).collect()
    }

    #[test]
    fn accepts_the_grammar() {
        let diags = msgs(
            r#"(define (loop n acc)
                 (if (zero? n) acc (loop (- n 1) (cons (quote x) acc))))
               (define (disp c v)
                 (if (equal? 3 (closure-label c))
                     (loop (closure-freeval c 0) v)
                     (%fail "no arm")))
               (define (mk x) (disp (make-closure 3 x) (quote ())))"#,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn call_in_simple_position_fails_the_certificate() {
        let diags = msgs("(define (loop n) (if (zero? n) 0 (loop (loop (- n 1)))))");
        assert!(
            diags.iter().any(|m| m.contains(
                "error[preservation] loop: call to loop in non-tail position: residual program is not tail-recursive"
            )),
            "{diags:?}"
        );
    }

    #[test]
    fn lambda_fails_the_certificate() {
        let diags = msgs("(define (f x) (cons (lambda (y) y) x))");
        assert!(
            diags.iter().any(|m| m.contains("higher-order construct (lambda)")),
            "{diags:?}"
        );
    }

    #[test]
    fn computed_application_fails_the_certificate() {
        let diags = msgs("(define (f g x) (g x))");
        // `g` is a parameter, not a defined procedure: unknown operator.
        assert!(diags.iter().any(|m| m.contains("unknown operator g")), "{diags:?}");
    }

    #[test]
    fn arity_drift_fails_the_certificate() {
        let diags = msgs("(define (main x) (helper x))\n(define (helper a b) a)");
        assert!(
            diags
                .iter()
                .any(|m| m.contains("tail call to helper with 1 argument(s), expected 2")),
            "{diags:?}"
        );
        let diags = msgs("(define (f x) (cons x))");
        assert!(
            diags
                .iter()
                .any(|m| m.contains("primitive cons applied to 1 argument(s), expected 2")),
            "{diags:?}"
        );
    }

    #[test]
    fn malformed_special_forms_are_reported() {
        assert!(msgs("(define (f x) (if x x))").iter().any(|m| m.contains("malformed if")));
        assert!(msgs("(define (f x) (%fail))").iter().any(|m| m.contains("malformed %fail")));
        assert!(msgs("(define (f x) (closure-freeval x))")
            .iter()
            .any(|m| m.contains("malformed closure-freeval")));
        assert!(msgs("(f x)").iter().any(|m| m.contains("not a (define")));
    }
}
