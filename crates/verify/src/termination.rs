//! Pass 7: the termination audit.
//!
//! The size-change termination analysis (`pe-sct`) classifies every
//! specialization-point candidate before the specializer runs; the
//! specializer logs every widening and eager generalization it actually
//! performs ([`pe_core::ControlEvent`]).  This pass checks the log
//! against the verdicts:
//!
//! * a *dynamically discovered* widening (slot cap, prefix cap) at a
//!   label the analysis classified **bounded** means the verdict
//!   over-claimed or the slot annotation leaked a widened slot into a
//!   provably descending position — warn;
//! * a context-stack flush at a label the analysis did *not* mark as
//!   stack-growing means the static call-graph missed a recursion the
//!   specializer then discovered — warn.
//!
//! Eager events (`SlotEager`, `StackEager`) are the analysis working as
//! designed and are never diagnosed.  The pass is advisory
//! (warning-severity): the residual program is still correct, the
//! *prediction* was incomplete.

use crate::report::{Diagnostic, Pass};
use pe_core::{CompileAudit, ControlKind};
use pe_sct::Verdict;

/// Audits one compile's control log against its SCT verdicts.  With the
/// analysis disabled there is nothing to check.
#[must_use]
pub fn check(audit: &CompileAudit) -> Vec<Diagnostic> {
    if !audit.enabled {
        return Vec::new();
    }
    let mut out = Vec::new();
    for e in &audit.events {
        match e.kind {
            ControlKind::SlotWiden | ControlKind::PrefixWiden => {
                if audit.verdicts.at_label(e.label) == Verdict::Bounded {
                    let what = match (e.kind, &e.var) {
                        (ControlKind::SlotWiden, Some(v)) => {
                            format!("slot {v} was widened")
                        }
                        (ControlKind::SlotWiden, None) => "a slot was widened".to_string(),
                        _ => "the context prefix was widened".to_string(),
                    };
                    out.push(Diagnostic::warning(
                        Pass::Termination,
                        None,
                        format!(
                            "{what} at label {} although size-change analysis \
                             classified the point bounded — leftover widened slot \
                             in a provably descending position",
                            e.label
                        ),
                    ));
                }
            }
            ControlKind::StackFlush => {
                if !audit.verdicts.stack_labels.contains(&e.label) {
                    out.push(Diagnostic::warning(
                        Pass::Termination,
                        None,
                        format!(
                            "context stack flushed at label {} which size-change \
                             analysis did not mark as stack-growing — the static \
                             call graph missed a recursion",
                            e.label
                        ),
                    ));
                }
            }
            ControlKind::SlotEager | ControlKind::StackEager => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::ControlEvent;
    use pe_sct::Verdicts;

    fn audit(events: Vec<ControlEvent>, verdicts: Verdicts) -> CompileAudit {
        CompileAudit { enabled: true, verdicts, stats: Default::default(), events }
    }

    #[test]
    fn disabled_audit_produces_nothing() {
        let a = CompileAudit {
            events: vec![ControlEvent { label: 1, kind: ControlKind::SlotWiden, var: None }],
            ..CompileAudit::default()
        };
        assert!(check(&a).is_empty());
    }

    #[test]
    fn widening_at_a_bounded_point_is_flagged() {
        let mut v = Verdicts::default();
        v.labels.insert(7, Verdict::Bounded);
        let a = audit(
            vec![ControlEvent {
                label: 7,
                kind: ControlKind::SlotWiden,
                var: Some("n".into()),
            }],
            v,
        );
        let diags = check(&a);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("slot n"), "{}", diags[0]);
        assert!(diags[0].message.contains("bounded"), "{}", diags[0]);
    }

    #[test]
    fn widening_at_an_unknown_point_is_expected() {
        // Unknown verdicts keep the dynamic machinery; its firings are
        // not findings.
        let a = audit(
            vec![ControlEvent { label: 3, kind: ControlKind::SlotWiden, var: None }],
            Verdicts::default(),
        );
        assert!(check(&a).is_empty());
    }

    #[test]
    fn unannotated_stack_flush_is_flagged() {
        let mut v = Verdicts::default();
        v.stack_labels.insert(4);
        let a = audit(
            vec![
                ControlEvent { label: 4, kind: ControlKind::StackFlush, var: None },
                ControlEvent { label: 9, kind: ControlKind::StackFlush, var: None },
            ],
            v,
        );
        let diags = check(&a);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("label 9"), "{}", diags[0]);
    }

    #[test]
    fn eager_events_are_never_diagnosed() {
        let a = audit(
            vec![
                ControlEvent { label: 1, kind: ControlKind::SlotEager, var: Some("k".into()) },
                ControlEvent { label: 2, kind: ControlKind::StackEager, var: None },
            ],
            Verdicts::default(),
        );
        assert!(check(&a).is_empty());
    }
}
