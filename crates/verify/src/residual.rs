//! Verification of Unmix residual programs.
//!
//! Unmix specialization produces surface-language
//! [`Program`](pe_frontend::ast::Program)s, not S₀ — so the S₀ passes do
//! not apply directly.  This module re-runs the relevant subset on the
//! surface AST: well-formedness (scoping with `let`, procedure
//! resolution, arity agreement), a first-orderness certificate (the
//! residual of a first-order subject must contain no `lambda` and no
//! computed application), and the reachability / dead-parameter lints.

use crate::report::{Diagnostic, Pass, Report};
use pe_frontend::ast::{Definition, Expr, Program};
use std::collections::{HashMap, HashSet};

/// Verifies an Unmix residual program with the given entry procedure.
pub fn verify_program(p: &Program, entry: &str) -> Report {
    let mut out = Vec::new();

    let arities: HashMap<&str, usize> =
        p.defs.iter().map(|d| (&*d.name, d.params.len())).collect();
    if !arities.contains_key(entry) {
        out.push(Diagnostic::error(
            Pass::WellFormed,
            None,
            format!("entry procedure {entry} is not defined"),
        ));
    }

    let mut seen = HashSet::new();
    for d in &p.defs {
        if !seen.insert(&*d.name) {
            out.push(Diagnostic::error(
                Pass::WellFormed,
                Some(&d.name),
                "duplicate procedure definition",
            ));
        }
        let mut scope: HashSet<&str> = HashSet::new();
        for prm in &d.params {
            if !scope.insert(prm) {
                out.push(Diagnostic::error(
                    Pass::WellFormed,
                    Some(&d.name),
                    format!("duplicate parameter {prm}"),
                ));
            }
        }
        check_expr(d, &d.body, &mut scope, &arities, &mut out);
    }

    lint(p, entry, &mut out);
    Report::new(out)
}

fn check_expr<'a>(
    d: &Definition,
    e: &'a Expr,
    scope: &mut HashSet<&'a str>,
    arities: &HashMap<&str, usize>,
    out: &mut Vec<Diagnostic>,
) {
    match e {
        Expr::Var(_, v) => {
            if !scope.contains(&**v) {
                out.push(Diagnostic::error(
                    Pass::WellFormed,
                    Some(&d.name),
                    format!("unbound variable {v}"),
                ));
            }
        }
        Expr::Const(_, _) => {}
        Expr::If(_, c, t, f) => {
            check_expr(d, c, scope, arities, out);
            check_expr(d, t, scope, arities, out);
            check_expr(d, f, scope, arities, out);
        }
        Expr::Prim(_, op, args) => {
            if args.len() != op.arity() {
                out.push(Diagnostic::error(
                    Pass::WellFormed,
                    Some(&d.name),
                    format!(
                        "primitive {op} applied to {} argument(s), expected {}",
                        args.len(),
                        op.arity()
                    ),
                ));
            }
            for a in args {
                check_expr(d, a, scope, arities, out);
            }
        }
        Expr::Call(_, callee, args) => {
            match arities.get(&**callee) {
                None => out.push(Diagnostic::error(
                    Pass::WellFormed,
                    Some(&d.name),
                    format!("call to undefined procedure {callee}"),
                )),
                Some(&n) if n != args.len() => out.push(Diagnostic::error(
                    Pass::WellFormed,
                    Some(&d.name),
                    format!("call to {callee} with {} argument(s), expected {n}", args.len()),
                )),
                Some(_) => {}
            }
            for a in args {
                check_expr(d, a, scope, arities, out);
            }
        }
        Expr::Let(_, v, rhs, body) => {
            check_expr(d, rhs, scope, arities, out);
            let fresh = scope.insert(v);
            check_expr(d, body, scope, arities, out);
            if fresh {
                scope.remove(&**v);
            }
        }
        Expr::Lambda(_, v, body) => {
            out.push(Diagnostic::error(
                Pass::Preservation,
                Some(&d.name),
                "higher-order construct (lambda) in residual program",
            ));
            let fresh = scope.insert(v);
            check_expr(d, body, scope, arities, out);
            if fresh {
                scope.remove(&**v);
            }
        }
        Expr::App(_, f, a) => {
            out.push(Diagnostic::error(
                Pass::Preservation,
                Some(&d.name),
                "computed application in residual program",
            ));
            check_expr(d, f, scope, arities, out);
            check_expr(d, a, scope, arities, out);
        }
    }
}

fn lint(p: &Program, entry: &str, out: &mut Vec<Diagnostic>) {
    let by_name: HashMap<&str, &Definition> = p.defs.iter().map(|d| (&*d.name, d)).collect();
    let mut reachable: HashSet<&str> = HashSet::new();
    let mut work = vec![entry];
    while let Some(name) = work.pop() {
        let Some((&k, d)) = by_name.get_key_value(name) else { continue };
        if !reachable.insert(k) {
            continue;
        }
        d.body.walk(&mut |e| {
            if let Expr::Call(_, callee, _) = e {
                if !reachable.contains(&**callee) {
                    if let Some((&c, _)) = by_name.get_key_value(&**callee) {
                        work.push(c);
                    }
                }
            }
        });
    }
    for d in &p.defs {
        if !reachable.contains(&*d.name) {
            out.push(Diagnostic::warning(
                Pass::Lint,
                Some(&d.name),
                format!("unreachable from entry {entry}"),
            ));
        }
        if &*d.name != entry {
            let mut used: HashSet<String> = HashSet::new();
            d.body.walk(&mut |e| {
                if let Expr::Var(_, v) = e {
                    used.insert(v.to_string());
                }
            });
            for prm in &d.params {
                if !used.contains(&**prm) {
                    out.push(Diagnostic::warning(
                        Pass::Lint,
                        Some(&d.name),
                        format!("dead parameter {prm}"),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        pe_frontend::parse_source(src).expect("test program parses")
    }

    #[test]
    fn accepts_a_first_order_residual() {
        let p = parse(
            "(define (loop-0 n acc)
               (if (zero? n) acc (loop-0 (- n 1) (let ((m (* n n))) (+ m acc)))))",
        );
        let r = verify_program(&p, "loop-0");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn rejects_scoping_arity_and_higher_order_defects() {
        // The parser already refuses arity mismatches and unbound
        // variables, so corrupt a valid program post-parse — exactly
        // what this pass exists to catch in generated residuals.
        let mut p = parse(
            "(define (main x) (helper x x))
             (define (helper a b) ((lambda (f) (f a)) b))",
        );
        let Expr::Call(_, _, args) = &mut p.defs[0].body else {
            panic!("main body is a call");
        };
        args.pop();
        args[0] = Expr::Var(pe_frontend::ast::Label(0), "y".into());
        let r = verify_program(&p, "main");
        let text = r.to_string();
        assert!(text.contains("error[well-formed] main: unbound variable y"), "{text}");
        assert!(
            text.contains("error[well-formed] main: call to helper with 1 argument(s), expected 2"),
            "{text}"
        );
        assert!(
            text.contains("error[preservation] helper: higher-order construct (lambda)"),
            "{text}"
        );
        assert!(
            text.contains("error[preservation] helper: computed application"),
            "{text}"
        );
    }

    #[test]
    fn missing_entry_and_unreachable_def() {
        let p = parse("(define (a x) x) (define (b x) x)");
        let r = verify_program(&p, "ghost");
        let text = r.to_string();
        assert!(text.contains("entry procedure ghost is not defined"), "{text}");
        assert!(text.contains("warning[lint] a: unreachable from entry ghost"), "{text}");
        assert!(text.contains("warning[lint] b: unreachable from entry ghost"), "{text}");
    }
}
