//! Pass 1 — well-formedness of S₀ programs.
//!
//! Replaces (and absorbs) the historical `S0Program::check()`: the entry
//! exists, procedure names are unique, parameters are unique, every
//! variable is bound by its procedure's parameter list, every call
//! targets a defined procedure with matching arity, and every primitive
//! application has the primitive's arity.  The tail-form grammar itself
//! is enforced twice: structurally by the `S0Tail`/`S0Simple` types, and
//! on the concrete syntax by the [preservation](crate::preservation)
//! certificate.

use crate::report::{Diagnostic, Pass};
use pe_core::{S0Program, S0Simple, S0Tail};
use std::collections::{HashMap, HashSet};

/// Runs the pass.
pub fn check(p: &S0Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let err = |proc_name: Option<&str>, msg: String| Diagnostic::error(Pass::WellFormed, proc_name, msg);

    // On duplicate definitions the *first* wins, matching lookup order;
    // the duplicate itself is reported below.
    let mut arities: HashMap<&str, usize> = HashMap::new();
    for pr in &p.procs {
        arities.entry(pr.name.as_str()).or_insert(pr.params.len());
    }
    if !arities.contains_key(p.entry.as_str()) {
        out.push(err(None, format!("entry procedure {} is not defined", p.entry)));
    }

    let mut seen = HashSet::new();
    for pr in &p.procs {
        if !seen.insert(pr.name.as_str()) {
            out.push(err(Some(&pr.name), "duplicate procedure definition".to_string()));
        }
        let mut params = HashSet::new();
        for prm in &pr.params {
            if !params.insert(prm.as_str()) {
                out.push(err(Some(&pr.name), format!("duplicate parameter {prm}")));
            }
        }
        let mut used = HashSet::new();
        pr.body.vars(&mut used);
        let mut unbound: Vec<String> =
            used.into_iter().filter(|v| !params.contains(v.as_str())).collect();
        unbound.sort();
        for v in unbound {
            out.push(err(Some(&pr.name), format!("unbound variable {v}")));
        }
        check_tail(&pr.name, &pr.body, &arities, &mut out);
    }
    out
}

fn check_tail(
    owner: &str,
    t: &S0Tail,
    arities: &HashMap<&str, usize>,
    out: &mut Vec<Diagnostic>,
) {
    match t {
        S0Tail::Return(s) => check_simple(owner, s, out),
        S0Tail::Fail(_) => {}
        S0Tail::If(c, a, b) => {
            check_simple(owner, c, out);
            check_tail(owner, a, arities, out);
            check_tail(owner, b, arities, out);
        }
        S0Tail::TailCall(callee, args) => {
            match arities.get(callee.as_str()) {
                None => out.push(Diagnostic::error(
                    Pass::WellFormed,
                    Some(owner),
                    format!("call to undefined procedure {callee}"),
                )),
                Some(&n) if n != args.len() => out.push(Diagnostic::error(
                    Pass::WellFormed,
                    Some(owner),
                    format!("call to {callee} with {} argument(s), expected {n}", args.len()),
                )),
                Some(_) => {}
            }
            for a in args {
                check_simple(owner, a, out);
            }
        }
    }
}

fn check_simple(owner: &str, s: &S0Simple, out: &mut Vec<Diagnostic>) {
    match s {
        S0Simple::Var(_) | S0Simple::Const(_) => {}
        S0Simple::Prim(op, args) => {
            if args.len() != op.arity() {
                out.push(Diagnostic::error(
                    Pass::WellFormed,
                    Some(owner),
                    format!(
                        "primitive {op} applied to {} argument(s), expected {}",
                        args.len(),
                        op.arity()
                    ),
                ));
            }
            for a in args {
                check_simple(owner, a, out);
            }
        }
        S0Simple::MakeClosure(_, args) => {
            for a in args {
                check_simple(owner, a, out);
            }
        }
        S0Simple::ClosureLabel(a) => check_simple(owner, a, out),
        S0Simple::ClosureFreeval(a, _) => check_simple(owner, a, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::ast::{Constant, Prim};
    use pe_core::S0Proc;

    fn var(v: &str) -> S0Simple {
        S0Simple::Var(v.into())
    }

    #[test]
    fn catches_all_basic_violations() {
        let prog = S0Program {
            entry: "ghost-entry".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into(), "x".into()],
                    body: S0Tail::If(
                        var("y"),
                        Box::new(S0Tail::TailCall("nope".into(), vec![])),
                        Box::new(S0Tail::TailCall("main".into(), vec![var("x")])),
                    ),
                },
                S0Proc {
                    name: "main".into(),
                    params: vec![],
                    body: S0Tail::Return(S0Simple::Prim(Prim::Car, vec![])),
                },
            ],
        };
        let msgs: Vec<String> = check(&prog).iter().map(ToString::to_string).collect();
        let text = msgs.join("\n");
        assert!(text.contains("entry procedure ghost-entry is not defined"), "{text}");
        assert!(text.contains("main: duplicate parameter x"), "{text}");
        assert!(text.contains("main: unbound variable y"), "{text}");
        assert!(text.contains("main: call to undefined procedure nope"), "{text}");
        assert!(text.contains("main: call to main with 1 argument(s), expected 2"), "{text}");
        assert!(text.contains("main: duplicate procedure definition"), "{text}");
        assert!(text.contains("main: primitive car applied to 0 argument(s), expected 1"), "{text}");
    }

    #[test]
    fn accepts_wellformed_loop() {
        let prog = S0Program {
            entry: "loop".into(),
            procs: vec![S0Proc {
                name: "loop".into(),
                params: vec!["n".into()],
                body: S0Tail::If(
                    S0Simple::Prim(Prim::ZeroP, vec![var("n")]),
                    Box::new(S0Tail::Return(S0Simple::Const(Constant::Int(0)))),
                    Box::new(S0Tail::TailCall(
                        "loop".into(),
                        vec![S0Simple::Prim(
                            Prim::Sub,
                            vec![var("n"), S0Simple::Const(Constant::Int(1))],
                        )],
                    )),
                ),
            }],
        };
        assert!(check(&prog).is_empty());
    }
}
