//! # pe-verify — static verification for the realistic-pe pipeline
//!
//! The compiler of this repository stakes a strong claim taken from the
//! paper (§4): because the closure-converted interpreter is first-order
//! and tail-recursive, *every* residual program is too, and the back
//! ends (VM, C emitter) may rely on it.  This crate checks that claim —
//! and ordinary well-formedness — with a multi-pass static analyzer
//! instead of trusting it:
//!
//! 1. **well-formed** ([`wellformed`]): scoping, unique procedure names
//!    and parameters, call-target existence, call and primitive arity.
//!    Absorbs the historical `S0Program::check()`.
//! 2. **closure-shape** ([`closure`]): an abstract interpretation
//!    mapping variables to sets of `make-closure` labels; verifies every
//!    `closure-freeval` index against the minimum captured-value count
//!    of the labels that can reach it, and flags dead or non-exhaustive
//!    sequential dispatch chains.
//! 3. **preservation** ([`preservation`]): the language-preservation
//!    certificate, validated on the *concrete syntax* (print → re-read →
//!    grammar check) so it is independent of the Rust type structure.
//! 4. **lint** ([`lints`]): unreachable procedures, dead parameters,
//!    `%fail`-only bodies — warnings about residual quality.
//! 5. **bta-congruence** ([`verify_division`]): audits an Unmix
//!    [`Division`](pe_unmix::Division) against its subject program.
//! 6. **flow** ([`flow`]): dataflow verification via `pe-flow` —
//!    definite binding along all CFG paths, dispatch-arm reachability,
//!    dead closure slots.  The two lint-grade checks mirror the flow
//!    optimizer exactly, so optimized pipeline output passes them by
//!    construction.
//! 7. **termination** ([`termination`]): the specializer's widening log
//!    audited against the size-change termination verdicts (`pe-sct`) —
//!    every dynamic widening must occur at a point the analysis flagged
//!    unbounded or unknown, and bounded points must not carry leftover
//!    widened slots.
//!
//! [`verify`] runs passes 1–4 and 6 over an [`S0Program`];
//! [`verify_audit`] runs pass 7 over a [`pe_core::CompileAudit`];
//! [`verify_source`]
//! runs the preservation certificate over raw text (useful as a
//! mutation oracle); [`residual::verify_program`] covers Unmix's
//! surface-language residuals.  The pipeline and the specializer call
//! these as debug-assertions, and `examples/verify.rs` in the
//! `realistic-pe` crate audits the whole Gabriel suite.

pub mod closure;
pub mod flow;
pub mod lints;
pub mod preservation;
pub mod report;
pub mod residual;
pub mod termination;
pub mod wellformed;

pub use report::{Diagnostic, Pass, Report, Severity};
pub use residual::verify_program;

use pe_core::S0Program;
use pe_unmix::Division;

/// Runs every S₀ pass (well-formed, closure-shape, preservation, lints,
/// flow) over `p` and collects the findings.
pub fn verify(p: &S0Program) -> Report {
    verify_with(p, &mut pe_trace::NullSink)
}

/// [`verify`] with per-residual-procedure cost attribution: each pass
/// is timed, and the summed wall time is spread over the program's
/// procedures by node share (the passes are whole-program analyses)
/// and emitted as `Event::Attr` rows under `Phase::Verify`.  With a
/// disabled sink this is exactly [`verify`] — no clock reads.
pub fn verify_with(p: &S0Program, sink: &mut dyn pe_trace::Sink) -> Report {
    let profiled = sink.enabled();
    let mut total_ns = 0u64;
    let mut timed = |check: &dyn Fn(&S0Program) -> Vec<Diagnostic>| {
        let t0 = profiled.then(std::time::Instant::now);
        let diags = check(p);
        if let Some(t0) = t0 {
            total_ns = total_ns
                .saturating_add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        diags
    };
    let mut diagnostics = timed(&wellformed::check);
    // The deeper passes assume basic well-formedness (e.g. bound
    // variables); run them anyway — they are robust — but order the
    // report by pass.
    diagnostics.extend(timed(&closure::check));
    diagnostics.extend(timed(&preservation::check));
    diagnostics.extend(timed(&lints::check));
    diagnostics.extend(timed(&flow::check));
    if profiled {
        let weights: Vec<u64> =
            p.procs.iter().map(|q| q.size() as u64).collect();
        let parts = pe_prof::distribute_ns(total_ns, &weights);
        for (proc, (ns, units)) in
            p.procs.iter().zip(parts.into_iter().zip(weights))
        {
            sink.attr(pe_trace::Phase::Verify, &proc.name, ns, units);
        }
    }
    Report::new(diagnostics)
}

/// Runs the language-preservation certificate over S₀ concrete syntax.
///
/// This is the text-level entry point: it accepts *any* string, so
/// mutation tests can corrupt a pretty-printed program (break the tail
/// form, drop an `if` arm, smuggle in a `lambda`) and confirm the
/// certificate refuses it.
pub fn verify_source(src: &str) -> Report {
    Report::new(preservation::check_source(src))
}

/// Audits a compile's control log against its size-change termination
/// verdicts (pass 7).  Advisory: findings are warnings about prediction
/// completeness, not residual correctness.
#[must_use]
pub fn verify_audit(audit: &pe_core::CompileAudit) -> Report {
    Report::new(termination::check(audit))
}

/// Audits an Unmix binding-time division for congruence over its
/// subject program (pass 5).
pub fn verify_division(
    p: &pe_frontend::Program,
    entry: &str,
    div: &Division,
) -> Report {
    Report::new(
        div.audit(p, entry)
            .into_iter()
            .map(|msg| Diagnostic::error(Pass::BtaCongruence, None, msg))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_is_clean_on_a_compiled_benchmark() {
        // End-to-end sanity: a small first-order program survives all
        // four passes once compiled to S₀ by hand.
        let src = "(define (count n) (if (zero? n) 0 (count (- n 1))))";
        let r = verify_source(src);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn verify_division_reports_congruence_errors() {
        let p = pe_frontend::parse_source(
            "(define (main s d) (f d))
             (define (f x) x)",
        )
        .unwrap();
        let div = Division::analyze(&p, "main", &[true, false]);
        assert!(verify_division(&p, "main", &div).is_clean());

        let mut bad = div.clone();
        bad.params.insert("f".into(), vec![pe_unmix::Bt::Static]);
        bad.result.insert("f".into(), pe_unmix::Bt::Static);
        let r = verify_division(&p, "main", &bad);
        assert!(r.has_errors());
        let text = r.to_string();
        assert!(text.contains("error[bta-congruence] congruence violation"), "{text}");
    }
}
