//! Pass 2 — closure-shape analysis.
//!
//! A small abstract interpretation over S₀: each value is approximated
//! by the set of `make-closure` labels that may reach it, plus an
//! `other` bit for values of unknown (non-`make-closure`) origin.  The
//! analysis is interprocedural (a fixpoint over the tail-call graph) and
//! path-sensitive along sequential label dispatch: inside the `then`
//! branch of `(if (equal? ℓ (closure-label c)) … …)` the subject `c` is
//! refined to label `ℓ`, and in the `else` branch `ℓ` is subtracted.
//!
//! The shapes are used for two checks:
//!
//! * every `(closure-freeval c i)` whose subject has a fully known label
//!   set is compared against the **minimum captured-value count** of
//!   those labels — an index at or past the minimum is a guaranteed
//!   out-of-bounds access on some path (error);
//! * every dispatch chain is audited for **dead arms** (a tested label
//!   that cannot reach the subject) and **non-exhaustiveness** (labels
//!   that fall through to a `%fail` arm) — both warnings.

use crate::report::{Diagnostic, Pass};
use pe_core::{S0Program, S0Simple, S0Tail};
use pe_frontend::ast::{Constant, Prim};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An abstract value: the `make-closure` labels that may flow here.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbsVal {
    /// Labels of `make-closure` sites that may reach this value.
    pub labels: BTreeSet<u32>,
    /// True if a value of unknown origin (entry input, primitive result,
    /// captured value) may also reach — the label set is then a lower
    /// bound only and index checks are skipped.
    pub other: bool,
}

impl AbsVal {
    fn bottom() -> AbsVal {
        AbsVal::default()
    }

    fn unknown() -> AbsVal {
        AbsVal { labels: BTreeSet::new(), other: true }
    }

    fn of_label(l: u32) -> AbsVal {
        AbsVal { labels: BTreeSet::from([l]), other: false }
    }

    fn join_from(&mut self, o: &AbsVal) -> bool {
        let before = (self.labels.len(), self.other);
        self.labels.extend(o.labels.iter().copied());
        self.other |= o.other;
        (self.labels.len(), self.other) != before
    }

    fn without(&self, l: u32) -> AbsVal {
        let mut labels = self.labels.clone();
        labels.remove(&l);
        AbsVal { labels, other: self.other }
    }
}

/// The analysis result: per-procedure parameter shapes and the minimum
/// captured-value count of every closure label.
#[derive(Debug, Clone)]
pub struct ClosureShapes {
    /// For each procedure, the abstract value of each parameter.
    pub params: HashMap<String, Vec<AbsVal>>,
    /// For each `make-closure` label, the minimum number of captured
    /// values over all of its allocation sites.
    pub min_captures: BTreeMap<u32, usize>,
}

type Refinements = Vec<(S0Simple, AbsVal)>;

/// Computes the closure shapes of `p` by fixpoint.
pub fn analyze(p: &S0Program) -> ClosureShapes {
    let mut min_captures = BTreeMap::new();
    for pr in &p.procs {
        collect_captures_tail(&pr.body, &mut min_captures);
    }
    let mut params: HashMap<String, Vec<AbsVal>> = p
        .procs
        .iter()
        .map(|pr| (pr.name.clone(), vec![AbsVal::bottom(); pr.params.len()]))
        .collect();
    // The entry's arguments come from outside: unknown.
    if let Some(slots) = params.get_mut(&p.entry) {
        for s in slots.iter_mut() {
            *s = AbsVal::unknown();
        }
    }
    loop {
        let mut changed = false;
        for pr in &p.procs {
            let env: HashMap<&str, AbsVal> = pr
                .params
                .iter()
                .map(String::as_str)
                .zip(params[&pr.name].iter().cloned())
                .collect();
            let mut flows = Vec::new();
            flow_tail(&pr.body, &env, &mut Vec::new(), &mut flows);
            for (callee, args) in flows {
                if let Some(slots) = params.get_mut(&callee) {
                    for (slot, v) in slots.iter_mut().zip(&args) {
                        changed |= slot.join_from(v);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    ClosureShapes { params, min_captures }
}

fn collect_captures_tail(t: &S0Tail, out: &mut BTreeMap<u32, usize>) {
    match t {
        S0Tail::Return(s) => collect_captures_simple(s, out),
        S0Tail::Fail(_) => {}
        S0Tail::If(c, a, b) => {
            collect_captures_simple(c, out);
            collect_captures_tail(a, out);
            collect_captures_tail(b, out);
        }
        S0Tail::TailCall(_, args) => args.iter().for_each(|a| collect_captures_simple(a, out)),
    }
}

fn collect_captures_simple(s: &S0Simple, out: &mut BTreeMap<u32, usize>) {
    match s {
        S0Simple::Var(_) | S0Simple::Const(_) => {}
        S0Simple::MakeClosure(l, args) => {
            out.entry(*l)
                .and_modify(|n| *n = (*n).min(args.len()))
                .or_insert(args.len());
            args.iter().for_each(|a| collect_captures_simple(a, out));
        }
        S0Simple::Prim(_, args) => args.iter().for_each(|a| collect_captures_simple(a, out)),
        S0Simple::ClosureLabel(a) | S0Simple::ClosureFreeval(a, _) => {
            collect_captures_simple(a, out);
        }
    }
}

/// Abstract evaluation of a simple expression under `env`, honouring
/// path refinements from enclosing dispatch tests.
fn eval(e: &S0Simple, env: &HashMap<&str, AbsVal>, refines: &Refinements) -> AbsVal {
    if let Some((_, v)) = refines.iter().rev().find(|(s, _)| s == e) {
        return v.clone();
    }
    match e {
        S0Simple::Var(v) => env.get(v.as_str()).cloned().unwrap_or_else(AbsVal::unknown),
        // A constant is never a closure.
        S0Simple::Const(_) => AbsVal::bottom(),
        // Primitive results may hold closures fetched out of pairs (the
        // residual context stack is an ordinary list).
        S0Simple::Prim(_, _) => AbsVal::unknown(),
        S0Simple::MakeClosure(l, _) => AbsVal::of_label(*l),
        // A closure label is a fixnum.
        S0Simple::ClosureLabel(_) => AbsVal::bottom(),
        // Captured values are not tracked through the closure record.
        S0Simple::ClosureFreeval(_, _) => AbsVal::unknown(),
    }
}

/// Recognizes a sequential-dispatch test
/// `(eq?/eqv?/equal? ℓ (closure-label subject))` (either operand
/// order); returns the subject and the tested label.
fn parse_dispatch(c: &S0Simple) -> Option<(&S0Simple, u32)> {
    let S0Simple::Prim(op, args) = c else { return None };
    if !matches!(op, Prim::EqP | Prim::EqvP | Prim::EqualP) || args.len() != 2 {
        return None;
    }
    let (k, subj) = match (&args[0], &args[1]) {
        (S0Simple::Const(Constant::Int(k)), S0Simple::ClosureLabel(s))
        | (S0Simple::ClosureLabel(s), S0Simple::Const(Constant::Int(k))) => (*k, &**s),
        _ => return None,
    };
    u32::try_from(k).ok().map(|k| (subj, k))
}

fn flow_tail(
    t: &S0Tail,
    env: &HashMap<&str, AbsVal>,
    refines: &mut Refinements,
    flows: &mut Vec<(String, Vec<AbsVal>)>,
) {
    match t {
        S0Tail::Return(_) | S0Tail::Fail(_) => {}
        S0Tail::TailCall(p, args) => {
            flows.push((p.clone(), args.iter().map(|a| eval(a, env, refines)).collect()));
        }
        S0Tail::If(c, a, b) => {
            if let Some((subj, k)) = parse_dispatch(c) {
                let v = eval(subj, env, refines);
                refines.push((subj.clone(), AbsVal::of_label(k)));
                flow_tail(a, env, refines, flows);
                refines.pop();
                refines.push((subj.clone(), v.without(k)));
                flow_tail(b, env, refines, flows);
                refines.pop();
            } else {
                flow_tail(a, env, refines, flows);
                flow_tail(b, env, refines, flows);
            }
        }
    }
}

/// Runs the pass: analysis plus the index/dispatch checks.
pub fn check(p: &S0Program) -> Vec<Diagnostic> {
    let shapes = analyze(p);
    let mut out = Vec::new();
    for pr in &p.procs {
        let env: HashMap<&str, AbsVal> = pr
            .params
            .iter()
            .map(String::as_str)
            .zip(shapes.params[&pr.name].iter().cloned())
            .collect();
        check_tail(&pr.body, &env, &mut Vec::new(), &shapes, &pr.name, &mut out);
    }
    out
}

fn fmt_labels(labels: &BTreeSet<u32>) -> String {
    labels.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
}

fn check_tail(
    t: &S0Tail,
    env: &HashMap<&str, AbsVal>,
    refines: &mut Refinements,
    shapes: &ClosureShapes,
    owner: &str,
    out: &mut Vec<Diagnostic>,
) {
    match t {
        S0Tail::Return(s) => check_simple(s, env, refines, shapes, owner, out),
        S0Tail::Fail(_) => {}
        S0Tail::TailCall(_, args) => {
            for a in args {
                check_simple(a, env, refines, shapes, owner, out);
            }
        }
        S0Tail::If(c, a, b) => {
            check_simple(c, env, refines, shapes, owner, out);
            if let Some((subj, k)) = parse_dispatch(c) {
                let v = eval(subj, env, refines);
                if !shapes.min_captures.contains_key(&k) {
                    out.push(Diagnostic::warning(
                        Pass::ClosureShape,
                        Some(owner),
                        format!("dispatch arm for label {k} is dead: the label is never allocated"),
                    ));
                } else if !v.other && !v.labels.is_empty() && !v.labels.contains(&k) {
                    out.push(Diagnostic::warning(
                        Pass::ClosureShape,
                        Some(owner),
                        format!(
                            "dispatch arm for label {k} is dead: subject may only carry label(s) {}",
                            fmt_labels(&v.labels)
                        ),
                    ));
                }
                refines.push((subj.clone(), AbsVal::of_label(k)));
                check_tail(a, env, refines, shapes, owner, out);
                refines.pop();
                let rest = v.without(k);
                if matches!(&**b, S0Tail::Fail(_)) && !rest.other && !rest.labels.is_empty() {
                    out.push(Diagnostic::warning(
                        Pass::ClosureShape,
                        Some(owner),
                        format!(
                            "sequential dispatch is non-exhaustive: label(s) {} fall through to %fail",
                            fmt_labels(&rest.labels)
                        ),
                    ));
                }
                refines.push((subj.clone(), rest));
                check_tail(b, env, refines, shapes, owner, out);
                refines.pop();
            } else {
                check_tail(a, env, refines, shapes, owner, out);
                check_tail(b, env, refines, shapes, owner, out);
            }
        }
    }
}

fn check_simple(
    s: &S0Simple,
    env: &HashMap<&str, AbsVal>,
    refines: &Refinements,
    shapes: &ClosureShapes,
    owner: &str,
    out: &mut Vec<Diagnostic>,
) {
    match s {
        S0Simple::Var(_) | S0Simple::Const(_) => {}
        S0Simple::Prim(_, args) | S0Simple::MakeClosure(_, args) => {
            for a in args {
                check_simple(a, env, refines, shapes, owner, out);
            }
        }
        S0Simple::ClosureLabel(a) => check_simple(a, env, refines, shapes, owner, out),
        S0Simple::ClosureFreeval(a, i) => {
            check_simple(a, env, refines, shapes, owner, out);
            let v = eval(a, env, refines);
            // Labels with no `make-closure` site in the program cannot
            // occur at run time (closures are an abstract type only this
            // program can create) — a dispatch arm refined to such a
            // label is dead code, not an out-of-bounds access.
            let live: BTreeSet<u32> = v
                .labels
                .iter()
                .copied()
                .filter(|l| shapes.min_captures.contains_key(l))
                .collect();
            if !v.other && !live.is_empty() {
                let min = live
                    .iter()
                    .map(|l| shapes.min_captures[l])
                    .min()
                    .expect("non-empty label set");
                if *i >= min {
                    out.push(Diagnostic::error(
                        Pass::ClosureShape,
                        Some(owner),
                        format!(
                            "closure-freeval index {i} exceeds the captured-value count of label(s) {} (minimum {min})",
                            fmt_labels(&live)
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::S0Proc;

    fn var(v: &str) -> S0Simple {
        S0Simple::Var(v.into())
    }

    fn int(n: i64) -> S0Simple {
        S0Simple::Const(Constant::Int(n))
    }

    fn dispatch(k: u32, subj: S0Simple) -> S0Simple {
        S0Simple::Prim(
            Prim::EqualP,
            vec![int(i64::from(k)), S0Simple::ClosureLabel(Box::new(subj))],
        )
    }

    /// entry(x): calls k with (make-closure 7 x); k(c) dispatches on c.
    fn two_proc_program(arm: S0Tail, else_: S0Tail, tested: u32) -> S0Program {
        S0Program {
            entry: "entry".into(),
            procs: vec![
                S0Proc {
                    name: "entry".into(),
                    params: vec!["x".into()],
                    body: S0Tail::TailCall(
                        "k".into(),
                        vec![S0Simple::MakeClosure(7, vec![var("x")])],
                    ),
                },
                S0Proc {
                    name: "k".into(),
                    params: vec!["c".into()],
                    body: S0Tail::If(
                        dispatch(tested, var("c")),
                        Box::new(arm),
                        Box::new(else_),
                    ),
                },
            ],
        }
    }

    #[test]
    fn freeval_in_range_is_clean() {
        let p = two_proc_program(
            S0Tail::Return(S0Simple::ClosureFreeval(Box::new(var("c")), 0)),
            S0Tail::Fail("no arm".into()),
            7,
        );
        let diags = check(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn freeval_out_of_range_is_an_error() {
        let p = two_proc_program(
            S0Tail::Return(S0Simple::ClosureFreeval(Box::new(var("c")), 1)),
            S0Tail::Fail("no arm".into()),
            7,
        );
        let diags = check(&p);
        let text: Vec<String> = diags.iter().map(ToString::to_string).collect();
        assert!(
            text.iter().any(|m| m.contains(
                "error[closure-shape] k: closure-freeval index 1 exceeds the captured-value count of label(s) 7 (minimum 1)"
            )),
            "{text:?}"
        );
    }

    #[test]
    fn dead_arm_and_nonexhaustive_fail_are_flagged() {
        // Tests label 9, but only label 7 can reach: the arm is dead and
        // label 7 falls through to %fail.
        let p = two_proc_program(
            S0Tail::Return(int(0)),
            S0Tail::Fail("no arm".into()),
            9,
        );
        let text: Vec<String> = check(&p).iter().map(ToString::to_string).collect();
        assert!(
            text.iter().any(|m| m.contains("dispatch arm for label 9 is dead")),
            "{text:?}"
        );
        assert!(
            text.iter()
                .any(|m| m.contains("non-exhaustive: label(s) 7 fall through to %fail")),
            "{text:?}"
        );
    }

    #[test]
    fn refinement_distinguishes_arms() {
        // Two labels with different capture counts; each arm accesses
        // only what its own label captures — clean thanks to refinement.
        let subj = var("c");
        let p = S0Program {
            entry: "entry".into(),
            procs: vec![
                S0Proc {
                    name: "entry".into(),
                    params: vec!["x".into()],
                    body: S0Tail::If(
                        S0Simple::Prim(Prim::NullP, vec![var("x")]),
                        Box::new(S0Tail::TailCall(
                            "k".into(),
                            vec![S0Simple::MakeClosure(1, vec![var("x"), var("x")])],
                        )),
                        Box::new(S0Tail::TailCall(
                            "k".into(),
                            vec![S0Simple::MakeClosure(2, vec![var("x")])],
                        )),
                    ),
                },
                S0Proc {
                    name: "k".into(),
                    params: vec!["c".into()],
                    body: S0Tail::If(
                        dispatch(1, subj.clone()),
                        Box::new(S0Tail::Return(S0Simple::ClosureFreeval(
                            Box::new(subj.clone()),
                            1,
                        ))),
                        Box::new(S0Tail::Return(S0Simple::ClosureFreeval(
                            Box::new(subj),
                            0,
                        ))),
                    ),
                },
            ],
        };
        let diags = check(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
