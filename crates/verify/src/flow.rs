//! Pass 6: dataflow verification, adapting [`pe_flow::check`] to this
//! crate's diagnostic vocabulary.
//!
//! The flow checks complement the syntactic passes: definite binding is
//! established along *all* CFG paths by a forward must-analysis (not a
//! scope walk), and the two residual-quality lints — statically
//! decidable dispatch arms, capture slots never read — mirror the flow
//! optimizer's own analyses exactly.  A program that went through
//! `pe_flow::optimize` therefore passes both lints by construction;
//! flagging one on pipeline output means an optimization was skipped
//! (or its fuel budget trapped).

use crate::report::{Diagnostic, Pass};
use pe_core::S0Program;
use pe_governor::{Fuel, Limits};

/// Runs the flow checks over `p`, mapping findings to [`Diagnostic`]s.
///
/// Infallible like the other passes: if the analysis budget traps, a
/// single warning reports the truncation instead of failing the run.
pub fn check(p: &S0Program) -> Vec<Diagnostic> {
    let mut fuel = Fuel::new(&Limits::default());
    match pe_flow::check(p, &mut fuel) {
        Ok(diags) => diags
            .into_iter()
            .map(|d| {
                let proc_name = Some(d.proc.as_str());
                match d.severity {
                    pe_flow::FlowSeverity::Error => {
                        Diagnostic::error(Pass::Flow, proc_name, d.message)
                    }
                    pe_flow::FlowSeverity::Warning => {
                        Diagnostic::warning(Pass::Flow, proc_name, d.message)
                    }
                }
            })
            .collect(),
        Err(trap) => vec![Diagnostic::warning(
            Pass::Flow,
            None,
            format!("flow verification truncated: {trap:?}"),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::{S0Proc, S0Simple, S0Tail};

    #[test]
    fn flow_errors_surface_as_flow_pass_diagnostics() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec![],
                body: S0Tail::Return(S0Simple::Var("ghost".into())),
            }],
        };
        let diags = check(&p);
        assert!(
            diags.iter().any(|d| d.pass == Pass::Flow
                && d.severity == crate::Severity::Error
                && d.message.contains("ghost")),
            "{diags:?}"
        );
    }

    #[test]
    fn clean_program_produces_no_flow_diagnostics() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec!["x".into()],
                body: S0Tail::Return(S0Simple::Var("x".into())),
            }],
        };
        assert!(check(&p).is_empty());
    }
}
