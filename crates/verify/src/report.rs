//! Diagnostics: what a verification pass reports and how a whole run is
//! summarized.

use std::fmt;

/// Which analyzer produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Scoping, procedure resolution, arity agreement (pass 1).
    WellFormed,
    /// The closure-shape abstract interpretation (pass 2).
    ClosureShape,
    /// The language-preservation certificate over concrete syntax
    /// (pass 3).
    Preservation,
    /// Heuristic residual-quality lints (pass 4).
    Lint,
    /// The Unmix binding-time congruence audit (pass 5).
    BtaCongruence,
    /// Dataflow verification via pe-flow: definite binding, dispatch-arm
    /// reachability, dead closure slots (pass 6).
    Flow,
    /// The termination audit: dynamic widenings checked against the
    /// size-change termination verdicts (pass 7).
    Termination,
}

impl Pass {
    /// Stable kebab-case name used in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Pass::WellFormed => "well-formed",
            Pass::ClosureShape => "closure-shape",
            Pass::Preservation => "preservation",
            Pass::Lint => "lint",
            Pass::BtaCongruence => "bta-congruence",
            Pass::Flow => "flow",
            Pass::Termination => "termination",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the program is correct but suboptimal or suspicious.
    Warning,
    /// The checked property is violated; back ends must not trust the
    /// program.
    Error,
}

/// One finding of one pass, attributed to a procedure when possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass that produced the finding.
    pub pass: Pass,
    /// Error or warning.
    pub severity: Severity,
    /// The offending procedure, if the finding is attributable.
    pub proc_name: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(pass: Pass, proc_name: Option<&str>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            pass,
            severity: Severity::Error,
            proc_name: proc_name.map(str::to_string),
            message: message.into(),
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(pass: Pass, proc_name: Option<&str>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            pass,
            severity: Severity::Warning,
            proc_name: proc_name.map(str::to_string),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        match &self.proc_name {
            Some(p) => write!(f, "{kind}[{}] {p}: {}", self.pass, self.message),
            None => write!(f, "{kind}[{}] {}", self.pass, self.message),
        }
    }
}

/// The result of a verification run: every diagnostic of every pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wraps a list of diagnostics.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Report {
        Report { diagnostics }
    }

    /// True if no *error*-severity diagnostic was produced (warnings are
    /// allowed).
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    /// True if any error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.warnings().count()
    }

    /// Renders the errors as plain strings (for error types that predate
    /// this crate, e.g. `PipelineError::IllFormed`).
    pub fn error_messages(&self) -> Vec<String> {
        self.errors().map(ToString::to_string).collect()
    }

    /// Appends another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return f.write_str("ok: no diagnostics");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_rendering() {
        let r = Report::new(vec![
            Diagnostic::error(Pass::WellFormed, Some("main"), "unbound variable x"),
            Diagnostic::warning(Pass::Lint, None, "nothing to do"),
        ]);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        let text = r.to_string();
        assert!(text.contains("error[well-formed] main: unbound variable x"), "{text}");
        assert!(text.contains("warning[lint] nothing to do"), "{text}");
        assert_eq!(Report::default().to_string(), "ok: no diagnostics");
    }
}
