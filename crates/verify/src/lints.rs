//! Pass 4 — residual-quality lints.
//!
//! Everything here is a *warning*: the program is correct, but the
//! specializer (or a hand-written subject) left something behind that a
//! good residual program would not contain — procedures no call chain
//! can reach, parameters nobody reads, or procedures whose whole body is
//! `%fail`.

use crate::report::{Diagnostic, Pass};
use pe_core::{S0Program, S0Tail};
use std::collections::{HashMap, HashSet};

/// Runs the pass.
pub fn check(p: &S0Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let warn = |proc_name: &str, msg: String| Diagnostic::warning(Pass::Lint, Some(proc_name), msg);

    // Reachability from the entry over tail-call edges.
    let by_name: HashMap<&str, &S0Tail> =
        p.procs.iter().map(|pr| (pr.name.as_str(), &pr.body)).collect();
    let mut reachable: HashSet<&str> = HashSet::new();
    let mut work = vec![p.entry.as_str()];
    while let Some(name) = work.pop() {
        if !reachable.insert(name) {
            continue;
        }
        if let Some(body) = by_name.get(name) {
            body.calls(&mut |callee| {
                if let Some((&k, _)) = by_name.get_key_value(callee) {
                    if !reachable.contains(k) {
                        work.push(k);
                    }
                }
            });
        }
    }

    for pr in &p.procs {
        if !reachable.contains(pr.name.as_str()) {
            out.push(warn(&pr.name, format!("unreachable from entry {}", p.entry)));
        }
        if matches!(pr.body, S0Tail::Fail(_)) {
            out.push(warn(&pr.name, "body is only %fail".to_string()));
        }
        if pr.name != p.entry {
            let mut used = HashSet::new();
            pr.body.vars(&mut used);
            for prm in &pr.params {
                if !used.contains(prm.as_str()) {
                    out.push(warn(&pr.name, format!("dead parameter {prm}")));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::{S0Proc, S0Simple};

    #[test]
    fn flags_unreachable_dead_param_and_fail_only() {
        let prog = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into()],
                    body: S0Tail::TailCall("helper".into(), vec![S0Simple::Var("x".into())]),
                },
                S0Proc {
                    name: "helper".into(),
                    params: vec!["x".into(), "unused".into()],
                    body: S0Tail::Return(S0Simple::Var("x".into())),
                },
                S0Proc {
                    name: "orphan".into(),
                    params: vec![],
                    body: S0Tail::Fail("never".into()),
                },
            ],
        };
        let text: Vec<String> = check(&prog).iter().map(ToString::to_string).collect();
        let text = text.join("\n");
        assert!(text.contains("warning[lint] orphan: unreachable from entry main"), "{text}");
        assert!(text.contains("warning[lint] orphan: body is only %fail"), "{text}");
        assert!(text.contains("warning[lint] helper: dead parameter unused"), "{text}");
        // `main`'s own param is exempt (the entry's interface is fixed),
        // and `helper` is reachable.
        assert!(!text.contains("helper: unreachable"), "{text}");
    }
}
