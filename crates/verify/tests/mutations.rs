//! Mutation testing of the verifier: compile a real benchmark, corrupt
//! it in a targeted way, and confirm that *exactly the intended pass*
//! rejects the mutant with a diagnostic naming the offending procedure.
//! A verifier that accepts any of these mutants is not checking what it
//! claims to check.

use pe_core::{CompileOptions, S0Program, S0Simple, S0Tail};
use pe_verify::{verify, verify_source, Pass, Report};

/// The paper's §1 example, compiled for real — closure conversion and
/// tail conversion make the residual rich enough to mutate.
const CPS_APPEND: &str = "(define (append x y) (cps-append x y (lambda (v) v)))
     (define (cps-append x y c)
       (if (null? x) (c y)
           (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";

fn compile_append() -> S0Program {
    let p = pe_frontend::parse_source(CPS_APPEND).expect("parse");
    let d = pe_frontend::desugar(&p).expect("desugar");
    pe_core::compile(&d, "append", &CompileOptions::default()).expect("compile")
}

/// Asserts every error belongs to one of `passes` and at least one
/// names `who`.  Several mutants are caught at more than one
/// representation level (typed AST, concrete syntax, dataflow) — the
/// point is that *only* the intended passes fire.
fn assert_caught_by(report: &Report, passes: &[Pass], who: &str) {
    assert!(report.has_errors(), "mutant was accepted:\n{report}");
    for e in report.errors() {
        assert!(passes.contains(&e.pass), "unexpected pass for: {e}");
    }
    assert!(
        report.errors().any(|e| e.proc_name.as_deref() == Some(who)),
        "no error names {who}:\n{report}"
    );
}

fn first_call_mut(t: &mut S0Tail) -> Option<(&mut String, &mut Vec<S0Simple>)> {
    match t {
        S0Tail::Return(_) | S0Tail::Fail(_) => None,
        S0Tail::If(_, a, b) => first_call_mut(a).or_else(|| first_call_mut(b)),
        S0Tail::TailCall(p, args) => Some((p, args)),
    }
}

#[test]
fn baseline_is_clean() {
    let s0 = compile_append();
    let report = verify(&s0);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn corrupt_arity_is_caught_by_wellformed() {
    let mut s0 = compile_append();
    let victim = s0
        .procs
        .iter_mut()
        .find_map(|pr| {
            let name = pr.name.clone();
            first_call_mut(&mut pr.body).filter(|(_, args)| !args.is_empty()).map(
                |(_, args)| {
                    args.pop();
                    name
                },
            )
        })
        .expect("some call has arguments");
    let report = verify(&s0);
    // Arity drift is caught at three representation levels: by the
    // well-formedness pass on the typed AST, by the preservation
    // certificate on the re-read concrete syntax, and by the dataflow
    // pass walking the CFG call nodes.
    assert!(report.has_errors(), "mutant was accepted:\n{report}");
    for (pass, wording) in [
        (Pass::WellFormed, "argument(s), expected"),
        (Pass::Preservation, "argument(s), expected"),
        (Pass::Flow, "arguments, expects"),
    ] {
        assert!(
            report.errors().any(|e| {
                e.pass == pass
                    && e.proc_name.as_deref() == Some(victim.as_str())
                    && e.message.contains(wording)
            }),
            "{pass:?} missed the arity mutant in {victim}:\n{report}"
        );
    }
    assert!(
        report.errors().all(|e| e.message.contains("argument(s), expected")
            || e.message.contains("arguments, expects")),
        "unrelated error:\n{report}"
    );
}

#[test]
fn unbound_variable_is_caught_by_wellformed() {
    fn poison(t: &mut S0Tail) -> bool {
        match t {
            S0Tail::Return(_) | S0Tail::Fail(_) => false,
            S0Tail::If(_, a, b) => poison(a) || poison(b),
            S0Tail::TailCall(_, args) => match args.first_mut() {
                Some(slot) => {
                    *slot = S0Simple::Var("phantom".into());
                    true
                }
                None => false,
            },
        }
    }
    let mut s0 = compile_append();
    let victim = s0
        .procs
        .iter_mut()
        .find_map(|pr| poison(&mut pr.body).then(|| pr.name.clone()))
        .expect("some call has arguments");
    let report = verify(&s0);
    assert_caught_by(&report, &[Pass::WellFormed, Pass::Flow], &victim);
    assert!(
        report.errors().any(|e| e.message.contains("unbound variable phantom")),
        "{report}"
    );
    assert!(
        report
            .errors()
            .any(|e| e.pass == Pass::Flow
                && e.message.contains("`phantom` read but not definitely bound")),
        "{report}"
    );
}

#[test]
fn broken_tail_form_is_caught_by_preservation() {
    // Text-level mutation: add a procedure that calls the entry in a
    // simple (non-tail) position — inexpressible in the S0Tail type,
    // which is exactly why the certificate re-checks concrete syntax.
    let s0 = compile_append();
    let mutant = format!(
        "{}\n(define (mutant a b) (cons ({} a b) a))",
        s0.to_source(),
        s0.entry
    );
    let report = verify_source(&mutant);
    assert_caught_by(&report, &[Pass::Preservation], "mutant");
    assert!(
        report.errors().any(|e| {
            e.message.contains("non-tail position")
                && e.message.contains("not tail-recursive")
        }),
        "{report}"
    );
}

#[test]
fn lambda_smuggled_into_residual_is_caught_by_preservation() {
    let s0 = compile_append();
    let mutant = format!(
        "{}\n(define (mutant a) (lambda (x) x))",
        s0.to_source()
    );
    let report = verify_source(&mutant);
    assert_caught_by(&report, &[Pass::Preservation], "mutant");
    assert!(
        report.errors().any(|e| e.message.contains("higher-order construct (lambda)")),
        "{report}"
    );
}

#[test]
fn shrunken_closure_record_is_caught_by_closure_shape() {
    // Truncate the captured values of every allocation site of one
    // label that captures at least one value; some dispatch arm still
    // reads `(closure-freeval c 0)` under that label.
    fn shrink(s: &mut S0Simple, label: u32) {
        match s {
            S0Simple::Var(_) | S0Simple::Const(_) => {}
            S0Simple::MakeClosure(l, args) => {
                if *l == label {
                    args.clear();
                } else {
                    args.iter_mut().for_each(|a| shrink(a, label));
                }
            }
            S0Simple::Prim(_, args) => args.iter_mut().for_each(|a| shrink(a, label)),
            S0Simple::ClosureLabel(a) | S0Simple::ClosureFreeval(a, _) => shrink(a, label),
        }
    }
    fn shrink_tail(t: &mut S0Tail, label: u32) {
        match t {
            S0Tail::Return(s) => shrink(s, label),
            S0Tail::Fail(_) => {}
            S0Tail::If(c, a, b) => {
                shrink(c, label);
                shrink_tail(a, label);
                shrink_tail(b, label);
            }
            S0Tail::TailCall(_, args) => args.iter_mut().for_each(|a| shrink(a, label)),
        }
    }

    let s0 = compile_append();
    let shapes = pe_verify::closure::analyze(&s0);
    let caught = shapes
        .min_captures
        .iter()
        .filter(|(_, &n)| n > 0)
        .any(|(&label, _)| {
            let mut mutant = s0.clone();
            for pr in &mut mutant.procs {
                shrink_tail(&mut pr.body, label);
            }
            let report = verify(&mutant);
            report.errors().all(|e| e.pass == Pass::ClosureShape)
                && report.errors().any(|e| {
                    e.proc_name.is_some()
                        && e.message.contains("closure-freeval index")
                        && e.message.contains("exceeds the captured-value count")
                })
        });
    assert!(caught, "no shrunken label produced a closure-shape error");
}

#[test]
fn golden_report_rendering() {
    // A fixed ill-formed program renders a byte-exact report: the
    // diagnostics are a stable API surface for drivers and tests.
    let src = "(define (main x) (if (helper x) (main x x) y))";
    let report = verify_source(src);
    assert_eq!(
        report.to_string(),
        "error[preservation] main: unknown operator helper\n\
         error[preservation] main: tail call to main with 2 argument(s), expected 1"
    );

    use pe_core::S0Proc;
    let prog = S0Program {
        entry: "main".into(),
        procs: vec![S0Proc {
            name: "main".into(),
            params: vec!["x".into()],
            body: S0Tail::TailCall("ghost".into(), vec![S0Simple::Var("y".into())]),
        }],
    };
    let report = verify(&prog);
    assert_eq!(
        report.to_string(),
        "error[well-formed] main: unbound variable y\n\
         error[well-formed] main: call to undefined procedure ghost\n\
         error[preservation] main: unknown operator ghost\n\
         error[flow] main: variable `y` read but not definitely bound\n\
         error[flow] main: call to unknown procedure `ghost`"
    );
}
