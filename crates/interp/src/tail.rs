//! The tail-recursive interpreter of Fig. 6.
//!
//! Evaluation contexts are encoded as closures, exactly like source-level
//! functions, and kept on an explicit stack `τ`:
//!
//! * `S` evaluates simple expressions (no calls — all statically
//!   unfoldable, which is what makes the specializer's residual code
//!   tail-recursive);
//! * `E*` processes serious expressions with the context stack;
//! * `C` applies the topmost pending context to a delivered value; an
//!   empty stack means the value is the final result.
//!
//! The whole machine is a single Rust loop: the host stack stays flat no
//! matter how deep the subject program's recursion is.

use crate::value::{apply_prim, Value};
use crate::{Datum, Fuel, InterpError, Limits};
use pe_frontend::ast::Prim;
use pe_frontend::dast::{DProgram, LamId, SimpleExpr, TailExpr, VarId};

/// A context/function closure of the tail machine: `(ℓ, v₁ … vₙ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TailClosure {
    /// The originating lambda.
    pub lam: LamId,
    /// Captured free-variable values in the lambda's fixed order.
    pub freevals: Vec<V>,
}

type V = Value<TailClosure>;

/// A per-activation environment (small; linear lookup).
///
/// Lookup is already symbol-free — keys are dense [`VarId`]s, never
/// strings — so the remaining per-call cost is allocation.  The run
/// loop double-buffers two `Env`s and swaps them on each call, so the
/// backing vectors are reused for the whole run.
#[derive(Debug, Clone, Default)]
struct Env(Vec<(VarId, V)>);

impl Env {
    fn bind(&mut self, var: VarId, val: V) {
        self.0.push((var, val));
    }

    fn lookup(&self, var: VarId) -> Option<&V> {
        self.0.iter().rev().find(|(v, _)| *v == var).map(|(_, val)| val)
    }
}

/// `S[SE]ρ` — simple-expression evaluation.
fn eval_simple(
    p: &DProgram,
    se: &SimpleExpr,
    env: &Env,
    fuel: &mut Fuel,
) -> Result<V, InterpError> {
    match se {
        SimpleExpr::Var(_, v) => env
            .lookup(*v)
            .cloned()
            .ok_or_else(|| InterpError::Unbound(p.var_name(*v))),
        SimpleExpr::Const(_, k) => Ok(Value::from_constant(k)),
        SimpleExpr::Prim(_, op, args) => {
            let vals = args
                .iter()
                .map(|a| eval_simple(p, a, env, fuel))
                .collect::<Result<Vec<_>, _>>()?;
            if matches!(op, Prim::Cons) {
                fuel.alloc(1)?;
            }
            Ok(apply_prim(*op, &vals)?)
        }
        SimpleExpr::Lambda(_, id) => {
            fuel.alloc(1)?;
            let lam = p.lambda(*id);
            let freevals = lam
                .freevars
                .iter()
                .map(|fv| {
                    env.lookup(*fv)
                        .cloned()
                        .ok_or_else(|| InterpError::Unbound(p.var_name(*fv)))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::Closure(TailClosure { lam: *id, freevals }))
        }
    }
}

/// Runs `entry` of the desugared program `p` on first-order arguments.
///
/// # Errors
///
/// Returns an [`InterpError`] for dynamic type errors, a missing or
/// wrong-arity entry, exhausted fuel, or a higher-order result.
pub fn run(
    p: &DProgram,
    entry: &str,
    args: &[Datum],
    limits: Limits,
) -> Result<Datum, InterpError> {
    run_with(p, entry, args, limits, &mut pe_trace::NullSink)
}

/// Like [`run`], reporting step/alloc counters — and the governor
/// meter snapshot on a trap — to `sink`.
///
/// # Errors
///
/// As [`run`].
pub fn run_with(
    p: &DProgram,
    entry: &str,
    args: &[Datum],
    limits: Limits,
    sink: &mut dyn pe_trace::Sink,
) -> Result<Datum, InterpError> {
    let mut fuel = Fuel::new(&limits);
    let result = exec(p, entry, args, &mut fuel);
    crate::flush_run(sink, &fuel, result.is_err());
    result
}

fn exec(
    p: &DProgram,
    entry: &str,
    args: &[Datum],
    fuel: &mut Fuel,
) -> Result<Datum, InterpError> {
    let pid = p
        .proc_id(entry)
        .ok_or_else(|| InterpError::NoSuchProc(entry.to_string()))?;
    let def = p.proc(pid);
    if def.params.len() != args.len() {
        return Err(InterpError::EntryArity {
            name: entry.to_string(),
            expected: def.params.len(),
            got: args.len(),
        });
    }
    let mut env = Env::default();
    for (param, arg) in def.params.iter().zip(args) {
        env.bind(*param, arg.embed());
    }

    // The machine is a flat loop (no host recursion), so only fuel and
    // the heap budget apply; `max_call_depth` is for the Fig. 3/Fig. 4
    // engines that model the stack with host recursion.
    // τ — the stack of pending evaluation contexts.
    let mut stack: Vec<TailClosure> = Vec::new();
    // The spare environment buffer: the next frame is built here (args
    // are still evaluated against `env`), then the two are swapped.
    let mut scratch = Env::default();
    let mut cur: &TailExpr = &def.body;

    loop {
        fuel.step()?;
        match cur {
            // E*[SE]ρτ = C (S[SE]ρ) τ
            TailExpr::Simple(se) => {
                let v = eval_simple(p, se, &env, fuel)?;
                match stack.pop() {
                    // C v [] = v
                    None => return v.to_datum().ok_or(InterpError::ResultNotFirstOrder),
                    // C v ((ℓ, v₁…vₙ) : τ): bind param and freevars, run body.
                    Some(ctx) => {
                        let lam = p.lambda(ctx.lam);
                        scratch.0.clear();
                        scratch.bind(lam.param, v);
                        for (fv, val) in lam.freevars.iter().zip(ctx.freevals) {
                            scratch.bind(*fv, val);
                        }
                        std::mem::swap(&mut env, &mut scratch);
                        cur = &lam.body;
                    }
                }
            }
            TailExpr::If(_, c, t, e) => {
                let cv = eval_simple(p, c, &env, fuel)?;
                cur = if cv.is_truthy() { t } else { e };
            }
            // E*[(P SE₁…SEₙ)]ρτ = E*[φ(P)][Vᵢ ↦ S[SEᵢ]ρ]τ
            TailExpr::CallProc(_, pid, args) => {
                let def = p.proc(*pid);
                scratch.0.clear();
                for (param, arg) in def.params.iter().zip(args) {
                    let v = eval_simple(p, arg, &env, fuel)?;
                    scratch.bind(*param, v);
                }
                std::mem::swap(&mut env, &mut scratch);
                cur = &def.body;
            }
            // E*[(SE E)]ρτ = E*[E]ρ (S[SE]ρ : τ)
            TailExpr::PushApp(_, ctx, body) => {
                match eval_simple(p, ctx, &env, fuel)? {
                    // Pending contexts live on the (heap-allocated)
                    // machine stack: charge them to the heap budget.
                    Value::Closure(c) => {
                        fuel.alloc(1)?;
                        stack.push(c);
                    }
                    v => return Err(InterpError::NotAProcedure(v.to_string())),
                }
                cur = body;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::{desugar, parse_source};

    fn go(src: &str, entry: &str, args: &[Datum]) -> Result<Datum, InterpError> {
        let p = desugar(&parse_source(src).unwrap()).unwrap();
        run(&p, entry, args, Limits::default())
    }

    #[test]
    fn contexts_deliver_values() {
        // (f (g x)) requires one context push/pop.
        let src = "(define (g x) (* x 2)) (define (f x) (+ x 1)) (define (h x) (f (g x)))";
        assert_eq!(go(src, "h", &[Datum::Int(10)]), Ok(Datum::Int(21)));
    }

    #[test]
    fn deeply_nested_contexts() {
        let src = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
        assert_eq!(go(src, "fib", &[Datum::Int(15)]), Ok(Datum::Int(610)));
    }

    #[test]
    fn cps_code_runs_with_empty_machine_stack() {
        // CPS programs carry their continuations as closures; the machine
        // stack depth stays ≤ 1 (push immediately followed by delivery).
        let src = "(define (loop n acc k) (if (zero? n) (k acc) (loop (- n 1) (+ acc 1) k)))
                   (define (main n) (loop n 0 (lambda (r) r)))";
        assert_eq!(go(src, "main", &[Datum::Int(100_000)]), Ok(Datum::Int(100_000)));
    }

    #[test]
    fn non_closure_context_is_an_error() {
        let src = "(define (f x) (x (f x)))";
        assert!(matches!(
            go(src, "f", &[Datum::Int(1)]),
            Err(InterpError::NotAProcedure(_))
        ));
    }

    #[test]
    fn let_over_lambda() {
        let src = "(define (main a)
                     (let ((mk (lambda (x) (lambda (y) (cons x y)))))
                       ((mk a) 2)))";
        assert_eq!(go(src, "main", &[Datum::Int(1)]).unwrap().to_string(), "(1 . 2)");
    }

    #[test]
    fn queens_smoke() {
        let src = r"
(define (ok? row dist placed)
  (if (null? placed) #t
      (if (= (car placed) row) #f
          (if (= (car placed) (+ row dist)) #f
              (if (= (car placed) (- row dist)) #f
                  (ok? row (+ dist 1) (cdr placed)))))))
(define (queens-col col n placed)
  (if (> col n) 1 (loop-rows 1 col n placed)))
(define (loop-rows row col n placed)
  (if (> row n) 0
      (+ (if (safe? row placed) (queens-col (+ col 1) n (cons row placed)) 0)
         (loop-rows (+ row 1) col n placed))))
(define (safe? row placed) (ok? row 1 placed))
(define (queens n) (queens-col 1 n '()))";
        assert_eq!(go(src, "queens", &[Datum::Int(5)]), Ok(Datum::Int(10)));
        assert_eq!(go(src, "queens", &[Datum::Int(6)]), Ok(Datum::Int(4)));
    }
}
