//! The interpreter family of §4 — three operationally different but
//! observationally equivalent evaluators for the subject language:
//!
//! * [`standard`] — Fig. 3: a straightforward environment-based
//!   call-by-value interpreter whose closures capture the whole lexical
//!   environment;
//! * [`closconv`] — Fig. 4: the same interpreter after Reynolds
//!   defunctionalization — closures are records of a lambda label and the
//!   values of its free variables;
//! * [`tail`] — Fig. 6: the tail-recursive interpreter over the desugared
//!   tail form, with an explicit stack of evaluation contexts (a loop, no
//!   host recursion).
//!
//! In the paper, partially evaluating the Fig. 6 interpreter with respect
//! to a subject program yields compiled code; these interpreters define
//! the reference semantics the compiler (crate `pe-core`) must preserve.

pub mod closconv;
pub mod standard;
pub mod tail;
pub mod value;

pub use pe_governor::{Fuel, Limits, Trap};
pub use value::{apply_prim, Datum, NoClosure, PrimError, Value};

use std::fmt;

/// Flushes one finished interpreter run to a trace sink: step/alloc
/// totals always, plus the governor gauge snapshot when the run ended
/// in an error so the trap carries its metrics.
pub(crate) fn flush_run(sink: &mut dyn pe_trace::Sink, fuel: &Fuel, errored: bool) {
    if sink.enabled() {
        sink.counter(pe_trace::Counter::EvalSteps, fuel.steps_used());
        sink.counter(pe_trace::Counter::EvalAllocs, fuel.cells_used());
        if errored {
            let snap = fuel.snapshot();
            pe_trace::trap_gauges(sink, snap.steps, snap.cells, snap.peak_depth as u64);
        }
    }
}

/// An error raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A primitive failed.
    Prim(PrimError),
    /// A non-procedure appeared in operator/context position.
    NotAProcedure(String),
    /// An unbound variable at runtime (only hand-built ASTs can do this).
    Unbound(String),
    /// The entry procedure does not exist.
    NoSuchProc(String),
    /// The entry procedure was given the wrong number of arguments.
    EntryArity { name: String, expected: usize, got: usize },
    /// The step budget was exhausted (guards tests against divergence).
    FuelExhausted,
    /// The program's result contains a closure and cannot be rendered as
    /// first-order data.
    ResultNotFirstOrder,
    /// A non-fuel resource trap (call depth, heap, machine invariant).
    Trap(Trap),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Prim(e) => write!(f, "{e}"),
            InterpError::NotAProcedure(v) => write!(f, "not a procedure: {v}"),
            InterpError::Unbound(v) => write!(f, "unbound variable at runtime: {v}"),
            InterpError::NoSuchProc(n) => write!(f, "no such procedure: {n}"),
            InterpError::EntryArity { name, expected, got } => {
                write!(f, "entry {name} expects {expected} argument(s), got {got}")
            }
            InterpError::FuelExhausted => write!(f, "step budget exhausted"),
            InterpError::ResultNotFirstOrder => {
                write!(f, "result contains a closure")
            }
            InterpError::Trap(t) => write!(f, "{t}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<PrimError> for InterpError {
    fn from(e: PrimError) -> Self {
        InterpError::Prim(e)
    }
}

impl From<Trap> for InterpError {
    /// Fuel exhaustion keeps its historical variant (callers match on
    /// it); every other trap surfaces structurally.
    fn from(t: Trap) -> Self {
        match t {
            Trap::OutOfFuel { .. } => InterpError::FuelExhausted,
            t => InterpError::Trap(t),
        }
    }
}

#[cfg(test)]
mod equivalence_tests {
    //! Cross-engine equivalence on a small program suite: the paper's
    //! Fig. 3, Fig. 4 and Fig. 6 interpreters agree everywhere.

    use crate::{closconv, standard, tail, Datum, InterpError, Limits};
    use pe_frontend::{desugar, parse_source};

    fn run_all(src: &str, entry: &str, args: &[Datum]) -> Vec<Result<Datum, InterpError>> {
        let p = parse_source(src).expect("parse");
        let d = desugar(&p).expect("desugar");
        vec![
            standard::run(&p, entry, args, Limits::default()),
            closconv::run(&p, entry, args, Limits::default()),
            tail::run(&d, entry, args, Limits::default()),
        ]
    }

    fn check(src: &str, entry: &str, args: &[Datum], expect: &str) {
        let expected = Datum::parse(expect).unwrap();
        for (i, r) in run_all(src, entry, args).into_iter().enumerate() {
            assert_eq!(r.as_ref(), Ok(&expected), "engine {i} on {entry}");
        }
    }

    #[test]
    fn cps_append_all_engines() {
        let src = "(define (append x y) (cps-append x y (lambda (v) v)))
                   (define (cps-append x y c)
                     (if (null? x) (c y)
                         (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";
        check(
            src,
            "append",
            &[Datum::parse("(1 2)").unwrap(), Datum::parse("(3 4)").unwrap()],
            "(1 2 3 4)",
        );
    }

    #[test]
    fn tak_all_engines() {
        let src = "(define (tak x y z)
                     (if (not (< y x)) z
                         (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))";
        check(
            src,
            "tak",
            &[Datum::Int(8), Datum::Int(4), Datum::Int(2)],
            "3",
        );
    }

    #[test]
    fn higher_order_compose_all_engines() {
        let src = "(define (main n)
                     (let ((add (lambda (a) (lambda (b) (+ a b))))
                           (twice (lambda (f) (lambda (x) (f (f x))))))
                       ((twice (add n)) 10)))";
        check(src, "main", &[Datum::Int(5)], "20");
    }

    #[test]
    fn deep_tail_recursion_is_constant_stack_in_tail_engine() {
        // A count-down loop of a million steps: the tail engine must not
        // overflow the host stack (the others get small inputs elsewhere).
        let src = "(define (loop n) (if (zero? n) 'done (loop (- n 1))))";
        let p = parse_source(src).unwrap();
        let d = desugar(&p).unwrap();
        let r = tail::run(&d, "loop", &[Datum::Int(1_000_000)], Limits::default());
        assert_eq!(r, Ok(Datum::Sym("done".into())));
    }

    #[test]
    fn errors_agree() {
        let src = "(define (f x) (car x))";
        for r in run_all(src, "f", &[Datum::Int(5)]) {
            assert!(matches!(r, Err(InterpError::Prim(_))), "got {r:?}");
        }
        for r in run_all(src, "g", &[Datum::Int(5)]) {
            assert!(matches!(r, Err(InterpError::NoSuchProc(_))));
        }
        for r in run_all(src, "f", &[]) {
            assert!(matches!(r, Err(InterpError::EntryArity { .. })));
        }
    }

    #[test]
    fn fuel_stops_divergence() {
        let src = "(define (f x) (f x))";
        let p = parse_source(src).unwrap();
        let d = desugar(&p).unwrap();
        // Small budget: the recursive engines use the host stack.
        let lim = Limits { fuel: 200, ..Limits::default() };
        assert_eq!(standard::run(&p, "f", &[Datum::Int(0)], lim), Err(InterpError::FuelExhausted));
        assert_eq!(closconv::run(&p, "f", &[Datum::Int(0)], lim), Err(InterpError::FuelExhausted));
        assert_eq!(tail::run(&d, "f", &[Datum::Int(0)], lim), Err(InterpError::FuelExhausted));
    }

    #[test]
    fn call_depth_traps_recursive_engines() {
        use pe_governor::Trap;
        // Non-tail recursion grows the host stack in Fig. 3 / Fig. 4:
        // the depth cap must fire long before fuel does.
        let src = "(define (f x) (cons (f x) '()))";
        let p = parse_source(src).unwrap();
        let lim = Limits { max_call_depth: 50, ..Limits::default() };
        for r in [
            standard::run(&p, "f", &[Datum::Int(0)], lim),
            closconv::run(&p, "f", &[Datum::Int(0)], lim),
        ] {
            assert_eq!(r, Err(InterpError::Trap(Trap::CallDepth { limit: 50 })));
        }
    }

    #[test]
    fn heap_limit_traps_all_engines() {
        use pe_governor::Trap;
        // An infinite cons-builder: each engine charges heap cells and
        // traps on the heap budget (fuel is left high on purpose).
        let src = "(define (g x) (g (cons x x)))";
        let p = parse_source(src).unwrap();
        let d = desugar(&p).unwrap();
        let lim = Limits { max_heap: 100, max_call_depth: 1_000_000, ..Limits::default() };
        for r in [
            standard::run(&p, "g", &[Datum::Int(0)], lim),
            closconv::run(&p, "g", &[Datum::Int(0)], lim),
            tail::run(&d, "g", &[Datum::Int(0)], lim),
        ] {
            assert_eq!(r, Err(InterpError::Trap(Trap::Heap { limit: 100 })));
        }
    }

    #[test]
    fn closure_result_is_reported() {
        let src = "(define (f x) (lambda (y) x))";
        for r in run_all(src, "f", &[Datum::Int(1)]) {
            assert_eq!(r, Err(InterpError::ResultNotFirstOrder));
        }
    }
}
