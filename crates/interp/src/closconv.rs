//! The closure-converted interpreter of Fig. 4 — Reynolds
//! defunctionalization applied to the Fig. 3 interpreter.
//!
//! A closure is a record `(ℓ, v₁ … vₙ)` of the originating lambda's label
//! and the values of its free variables in a fixed order.  Application
//! looks the lambda body up by `ℓ` and rebuilds a *fresh* environment
//! from the parameter and the captured values — no environment is ever
//! shared between closures, which is exactly what makes the residual
//! code of the specializer first-order.

use crate::value::{apply_prim, Value};
use crate::{Datum, Fuel, InterpError, Limits, Trap};
use pe_frontend::ast::{Expr, Label, Prim, Program};
use std::collections::{BTreeSet, HashMap};
/// A flat closure record `(ℓ, v₁ … vₙ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatClosure {
    /// The label of the originating lambda expression.
    pub label: Label,
    /// Values of the free variables, in the fixed order of the lambda's
    /// sorted free-variable list.
    pub freevals: Vec<V>,
}

type V = Value<FlatClosure>;

/// Static information about one lambda, gathered in a prepass.
#[derive(Debug)]
struct LambdaInfo<'p> {
    param: &'p str,
    /// Free variables in sorted order — `freevars(ℓ)` of the paper.
    freevars: Vec<&'p str>,
    body: &'p Expr,
}

/// The label→lambda map `φ` plus free-variable info.
struct LambdaTable<'p>(HashMap<Label, LambdaInfo<'p>>);

impl<'p> LambdaTable<'p> {
    fn build(prog: &'p Program) -> LambdaTable<'p> {
        let mut table = HashMap::new();
        for def in &prog.defs {
            collect(&def.body, &mut table);
        }
        LambdaTable(table)
    }
}

fn collect<'p>(e: &'p Expr, table: &mut HashMap<Label, LambdaInfo<'p>>) {
    if let Expr::Lambda(l, v, body) = e {
        let mut fv = BTreeSet::new();
        free_vars(body, &mut fv);
        fv.remove(v.as_ref());
        table.insert(
            *l,
            LambdaInfo { param: v, freevars: fv.into_iter().collect(), body },
        );
    }
    match e {
        Expr::Var(_, _) | Expr::Const(_, _) => {}
        Expr::If(_, c, t, f) => {
            collect(c, table);
            collect(t, table);
            collect(f, table);
        }
        Expr::Prim(_, _, args) | Expr::Call(_, _, args) => {
            args.iter().for_each(|a| collect(a, table));
        }
        Expr::Let(_, _, rhs, body) => {
            collect(rhs, table);
            collect(body, table);
        }
        Expr::Lambda(_, _, body) => collect(body, table),
        Expr::App(_, f, a) => {
            collect(f, table);
            collect(a, table);
        }
    }
}

/// Free variables of a surface expression (name-based; the surface AST is
/// not alpha-renamed).
fn free_vars<'p>(e: &'p Expr, out: &mut BTreeSet<&'p str>) {
    match e {
        Expr::Var(_, v) => {
            out.insert(v);
        }
        Expr::Const(_, _) => {}
        Expr::If(_, c, t, f) => {
            free_vars(c, out);
            free_vars(t, out);
            free_vars(f, out);
        }
        Expr::Prim(_, _, args) | Expr::Call(_, _, args) => {
            args.iter().for_each(|a| free_vars(a, out));
        }
        Expr::Let(_, v, rhs, body) => {
            free_vars(rhs, out);
            let mut inner = BTreeSet::new();
            free_vars(body, &mut inner);
            inner.remove(v.as_ref());
            out.extend(inner);
        }
        Expr::Lambda(_, v, body) => {
            let mut inner = BTreeSet::new();
            free_vars(body, &mut inner);
            inner.remove(v.as_ref());
            out.extend(inner);
        }
        Expr::App(_, f, a) => {
            free_vars(f, out);
            free_vars(a, out);
        }
    }
}

/// A per-activation environment; small, so linear lookup wins.
#[derive(Debug, Clone, Default)]
struct Env<'p>(Vec<(&'p str, V)>);

impl<'p> Env<'p> {
    fn bind(&mut self, name: &'p str, val: V) {
        self.0.push((name, val));
    }

    fn lookup(&self, name: &str) -> Option<&V> {
        // Innermost binding wins: search from the back.
        self.0.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| v)
    }
}

struct Interp<'p> {
    prog: &'p Program,
    lambdas: LambdaTable<'p>,
    fuel: Fuel,
}

impl<'p> Interp<'p> {
    fn spend(&mut self) -> Result<(), InterpError> {
        Ok(self.fuel.step()?)
    }

    /// Looks a lambda up by label; a miss means the closure record was
    /// not produced by this program (hand-built AST), which surfaces as
    /// a dispatch trap rather than a panic.
    fn lambda(&self, l: &Label) -> Result<&LambdaInfo<'p>, InterpError> {
        self.lambdas.0.get(l).ok_or_else(|| {
            InterpError::Trap(Trap::BadDispatch {
                pc: l.0 as usize,
                detail: format!("no lambda with label {}", l.0),
            })
        })
    }

    /// E[(E₁ E₂)]ρ: look the body up by the label and rebuild the
    /// environment from the closure record.
    fn apply_closure(&mut self, c: FlatClosure, av: V) -> Result<V, InterpError> {
        let info = self.lambda(&c.label)?;
        let mut callee = Env::default();
        callee.bind(info.param, av);
        for (fv, val) in info.freevars.iter().zip(c.freevals) {
            callee.bind(fv, val);
        }
        self.eval(info.body, &callee)
    }

    fn eval(&mut self, e: &'p Expr, env: &Env<'p>) -> Result<V, InterpError> {
        match e {
            Expr::Var(_, v) => env
                .lookup(v)
                .cloned()
                .ok_or_else(|| InterpError::Unbound(v.to_string())),
            Expr::Const(_, k) => Ok(Value::from_constant(k)),
            Expr::If(_, c, t, f) => {
                let c = self.eval(c, env)?;
                if c.is_truthy() {
                    self.eval(t, env)
                } else {
                    self.eval(f, env)
                }
            }
            Expr::Prim(_, op, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                if matches!(op, Prim::Cons) {
                    self.fuel.alloc(1)?;
                }
                Ok(apply_prim(*op, &vals)?)
            }
            Expr::Call(_, p, args) => {
                self.spend()?;
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                let def = self
                    .prog
                    .def(p)
                    .ok_or_else(|| InterpError::NoSuchProc(p.to_string()))?;
                let mut callee = Env::default();
                for (param, val) in def.params.iter().zip(vals) {
                    callee.bind(param, val);
                }
                // Like Fig. 3, callees run on the host stack: cap depth.
                self.fuel.enter_call()?;
                let r = self.eval(&def.body, &callee);
                self.fuel.exit_call();
                r
            }
            Expr::Let(_, v, rhs, body) => {
                let rhs = self.eval(rhs, env)?;
                let mut inner = env.clone();
                inner.bind(v, rhs);
                self.eval(body, &inner)
            }
            Expr::Lambda(l, _, _) => {
                // E[(lambda_ℓ (V) E)]ρ = let V₁…Vₙ = freevars(ℓ) in (ℓ, ρV₁…ρVₙ)
                self.fuel.alloc(1)?;
                let info = self.lambda(l)?;
                let freevals = info
                    .freevars
                    .iter()
                    .map(|fv| {
                        env.lookup(fv)
                            .cloned()
                            .ok_or_else(|| InterpError::Unbound(fv.to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::Closure(FlatClosure { label: *l, freevals }))
            }
            Expr::App(_, f, a) => {
                self.spend()?;
                let fv = self.eval(f, env)?;
                let av = self.eval(a, env)?;
                match fv {
                    Value::Closure(c) => {
                        self.fuel.enter_call()?;
                        let r = self.apply_closure(c, av);
                        self.fuel.exit_call();
                        r
                    }
                    v => Err(InterpError::NotAProcedure(v.to_string())),
                }
            }
        }
    }
}

/// Runs `entry` of `prog` on first-order arguments with flat-closure
/// semantics.
///
/// # Errors
///
/// Returns an [`InterpError`] for dynamic type errors, a missing or
/// wrong-arity entry, exhausted fuel, or a higher-order result.
pub fn run(
    prog: &Program,
    entry: &str,
    args: &[Datum],
    limits: Limits,
) -> Result<Datum, InterpError> {
    run_with(prog, entry, args, limits, &mut pe_trace::NullSink)
}

/// Like [`run`], reporting step/alloc counters — and the governor
/// meter snapshot on a trap — to `sink`.
///
/// # Errors
///
/// As [`run`].
pub fn run_with(
    prog: &Program,
    entry: &str,
    args: &[Datum],
    limits: Limits,
    sink: &mut dyn pe_trace::Sink,
) -> Result<Datum, InterpError> {
    let def = prog
        .def(entry)
        .ok_or_else(|| InterpError::NoSuchProc(entry.to_string()))?;
    if def.params.len() != args.len() {
        return Err(InterpError::EntryArity {
            name: entry.to_string(),
            expected: def.params.len(),
            got: args.len(),
        });
    }
    let mut env = Env::default();
    for (param, arg) in def.params.iter().zip(args) {
        env.bind(param, arg.embed());
    }
    let mut interp = Interp { prog, lambdas: LambdaTable::build(prog), fuel: Fuel::new(&limits) };
    let result = interp
        .eval(&def.body, &env)
        .and_then(|v| v.to_datum().ok_or(InterpError::ResultNotFirstOrder));
    crate::flush_run(sink, &interp.fuel, result.is_err());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::parse_source;
    use std::rc::Rc;

    fn go(src: &str, entry: &str, args: &[Datum]) -> Result<Datum, InterpError> {
        run(&parse_source(src).unwrap(), entry, args, Limits::default())
    }

    #[test]
    fn closures_capture_only_free_variables() {
        // `unused` is in scope but not free in the lambda; a flat closure
        // must not capture it — observable only via this passing at all,
        // plus the freevar-order test below.
        let src = "(define (main u)
                     (let ((unused u))
                       (let ((k ((lambda (a) (lambda (b) (+ a b))) 1)))
                         (k 2))))";
        assert_eq!(go(src, "main", &[Datum::Int(9)]), Ok(Datum::Int(3)));
    }

    #[test]
    fn freevar_order_is_fixed() {
        let p = parse_source("(define (f b a c) (lambda (x) (cons b (cons a (cons c x)))))")
            .unwrap();
        let table = LambdaTable::build(&p);
        let info = table.0.values().next().unwrap();
        assert_eq!(info.freevars, vec!["a", "b", "c"], "sorted order");
    }

    #[test]
    fn church_numerals() {
        // Heavy higher-order churn: 3 + 4 via Church encodings.
        let src = "(define (church n) (if (zero? n) (lambda (f) (lambda (x) x))
                     ((lambda (m) (lambda (f) (lambda (x) (f ((m f) x))))) (church (- n 1)))))
                   (define (unchurch c) ((c (lambda (k) (+ k 1))) 0))
                   (define (main a b)
                     (unchurch (lambda (f) (lambda (x) (((church a) f) (((church b) f) x))))))";
        assert_eq!(go(src, "main", &[Datum::Int(3), Datum::Int(4)]), Ok(Datum::Int(7)));
    }

    #[test]
    fn equal_closures_by_structure() {
        let c1 = FlatClosure { label: Label(1), freevals: vec![Value::Int(1)] };
        let c2 = FlatClosure { label: Label(1), freevals: vec![Value::Int(1)] };
        let c3 = FlatClosure { label: Label(2), freevals: vec![Value::Int(1)] };
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        let _ = Rc::new(c1);
    }

    #[test]
    fn deep_list_result() {
        let src = "(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))";
        let r = go(src, "iota", &[Datum::Int(3)]).unwrap();
        assert_eq!(r.to_string(), "(3 2 1)");
    }
}
