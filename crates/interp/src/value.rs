//! Runtime values, shared by every execution engine in the suite.
//!
//! [`Value`] is generic over the closure representation `C`: the standard
//! interpreter (Fig. 3) uses environment-capturing closures, the
//! closure-converted ones (Fig. 4/6) and the S₀ virtual machine use flat
//! closure records, and first-order *results* use the uninhabited
//! [`NoClosure`] so that [`Datum`] is statically closure-free.
//! Primitive application ([`apply_prim`]) is shared across all engines.
//!
//! Representation note: strings and symbols are `Arc<str>` so they can
//! be shared pointer-for-pointer with the *program* representation
//! (`Constant`, `Sexpr`), which must be `Send` for the compile service.
//! Pairs and closure records are `Rc`: runtime values are engine-local
//! and never cross threads — only compiled programs do — and the
//! cons/car/cdr loop is every engine's hottest path, where atomic
//! reference counting costs a measurable 7–20%.

use pe_frontend::ast::{Constant, Prim};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A runtime value with closure representation `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value<C> {
    /// A fixnum.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A character.
    Char(char),
    /// A string.
    Str(Arc<str>),
    /// A symbol.
    Sym(Arc<str>),
    /// The empty list.
    Nil,
    /// A pair.
    Pair(Rc<(Value<C>, Value<C>)>),
    /// A closure.
    Closure(C),
}

/// The uninhabited closure type of first-order data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoClosure {}

/// First-order data — the result type of every engine, directly
/// comparable across engines.
pub type Datum = Value<NoClosure>;

impl<C> Value<C> {
    /// Scheme truthiness: everything except `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// Builds a runtime value from a program constant.
    pub fn from_constant(k: &Constant) -> Value<C> {
        match k {
            Constant::Int(n) => Value::Int(*n),
            Constant::Bool(b) => Value::Bool(*b),
            Constant::Char(c) => Value::Char(*c),
            Constant::Str(s) => Value::Str(s.clone()),
            Constant::Sym(s) => Value::Sym(s.clone()),
            Constant::Nil => Value::Nil,
            Constant::Pair(a, d) => Value::Pair(Rc::new((
                Value::from_constant(a),
                Value::from_constant(d),
            ))),
        }
    }

    /// Converts to first-order data; `None` if a closure occurs anywhere.
    pub fn to_datum(&self) -> Option<Datum> {
        Some(match self {
            Value::Int(n) => Value::Int(*n),
            Value::Bool(b) => Value::Bool(*b),
            Value::Char(c) => Value::Char(*c),
            Value::Str(s) => Value::Str(s.clone()),
            Value::Sym(s) => Value::Sym(s.clone()),
            Value::Nil => Value::Nil,
            Value::Pair(p) => {
                Value::Pair(Rc::new((p.0.to_datum()?, p.1.to_datum()?)))
            }
            Value::Closure(_) => return None,
        })
    }

    /// Builds a proper list.
    pub fn list<I: IntoIterator<Item = Value<C>>>(items: I) -> Value<C>
    where
        I::IntoIter: DoubleEndedIterator,
    {
        let mut acc = Value::Nil;
        for v in items.into_iter().rev() {
            acc = Value::Pair(Rc::new((v, acc)));
        }
        acc
    }
}

impl Datum {
    /// Parses first-order data from S-expression source, e.g. `(1 2 3)`.
    ///
    /// # Errors
    ///
    /// Returns the reader error message on malformed input.
    pub fn parse(src: &str) -> Result<Datum, String> {
        let s = pe_sexpr::read_one(src).map_err(|e| e.to_string())?;
        Ok(Self::from_sexpr(&s))
    }

    /// Converts an S-expression to first-order data (symbols stay
    /// symbols; lists become pair spines).
    pub fn from_sexpr(s: &pe_sexpr::Sexpr) -> Datum {
        match s {
            pe_sexpr::Sexpr::Int(n) => Value::Int(*n),
            pe_sexpr::Sexpr::Bool(b) => Value::Bool(*b),
            pe_sexpr::Sexpr::Char(c) => Value::Char(*c),
            pe_sexpr::Sexpr::Str(s) => Value::Str(s.clone()),
            pe_sexpr::Sexpr::Sym(s) => Value::Sym(s.clone()),
            pe_sexpr::Sexpr::List(xs) => Value::list(xs.iter().map(Self::from_sexpr)),
        }
    }

    /// Injects first-order data into any value domain.
    pub fn embed<C>(&self) -> Value<C> {
        match self {
            Value::Int(n) => Value::Int(*n),
            Value::Bool(b) => Value::Bool(*b),
            Value::Char(c) => Value::Char(*c),
            Value::Str(s) => Value::Str(s.clone()),
            Value::Sym(s) => Value::Sym(s.clone()),
            Value::Nil => Value::Nil,
            Value::Pair(p) => Value::Pair(Rc::new((p.0.embed(), p.1.embed()))),
            Value::Closure(c) => match *c {},
        }
    }
}

impl<C: fmt::Debug> fmt::Display for Value<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(true) => write!(f, "#t"),
            Value::Bool(false) => write!(f, "#f"),
            Value::Char(c) => write!(f, "#\\{c}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Nil => write!(f, "()"),
            Value::Pair(_) => {
                write!(f, "(")?;
                let mut cur = self;
                let mut first = true;
                loop {
                    match cur {
                        Value::Pair(p) => {
                            if !first {
                                write!(f, " ")?;
                            }
                            first = false;
                            write!(f, "{}", p.0)?;
                            cur = &p.1;
                        }
                        Value::Nil => return write!(f, ")"),
                        v => return write!(f, " . {v})"),
                    }
                }
            }
            Value::Closure(c) => write!(f, "#<procedure {c:?}>"),
        }
    }
}

/// An error raised by primitive application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimError {
    /// The operand had the wrong type, e.g. `(car 5)`.
    TypeError { prim: Prim, expected: &'static str, got: String },
    /// Division by zero in `quotient`/`remainder`.
    DivisionByZero(Prim),
    /// Fixnum overflow in arithmetic.
    Overflow(Prim),
    /// Wrong number of arguments (internal invariant; the parser checks
    /// arities, so only hand-built programs can trigger this).
    Arity { prim: Prim, expected: usize, got: usize },
}

impl fmt::Display for PrimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimError::TypeError { prim, expected, got } => {
                write!(f, "{prim}: expected {expected}, got {got}")
            }
            PrimError::DivisionByZero(p) => write!(f, "{p}: division by zero"),
            PrimError::Overflow(p) => write!(f, "{p}: fixnum overflow"),
            PrimError::Arity { prim, expected, got } => {
                write!(f, "{prim}: expected {expected} argument(s), got {got}")
            }
        }
    }
}

impl std::error::Error for PrimError {}

fn int<C: fmt::Debug>(p: Prim, v: &Value<C>) -> Result<i64, PrimError> {
    match v {
        Value::Int(n) => Ok(*n),
        v => Err(PrimError::TypeError { prim: p, expected: "number", got: v.to_string() }),
    }
}

/// Structural equality (`equal?`).  Closures compare by their `PartialEq`
/// (flat closures: label + captured values), a documented deviation from
/// R5RS's unspecified behaviour.
fn equal<C: PartialEq>(a: &Value<C>, b: &Value<C>) -> bool {
    match (a, b) {
        (Value::Pair(x), Value::Pair(y)) => equal(&x.0, &y.0) && equal(&x.1, &y.1),
        _ => a == b,
    }
}

/// Identity-ish equality (`eq?`): atoms by value, pairs and strings by
/// allocation identity.
fn eq_identity<C: PartialEq>(a: &Value<C>, b: &Value<C>) -> bool {
    match (a, b) {
        (Value::Pair(x), Value::Pair(y)) => Rc::ptr_eq(x, y),
        (Value::Str(x), Value::Str(y)) => Arc::ptr_eq(x, y),
        _ => a == b,
    }
}

/// Applies a primitive to argument values.
///
/// # Errors
///
/// Returns a [`PrimError`] on type errors, division by zero, overflow or
/// (for hand-built programs) arity mismatch.
pub fn apply_prim<C: Clone + PartialEq + fmt::Debug>(
    p: Prim,
    args: &[Value<C>],
) -> Result<Value<C>, PrimError> {
    use Prim::*;
    if args.len() != p.arity() {
        return Err(PrimError::Arity { prim: p, expected: p.arity(), got: args.len() });
    }
    Ok(match p {
        Cons => Value::Pair(Rc::new((args[0].clone(), args[1].clone()))),
        Car => match &args[0] {
            Value::Pair(p) => p.0.clone(),
            v => {
                return Err(PrimError::TypeError {
                    prim: Car,
                    expected: "pair",
                    got: v.to_string(),
                })
            }
        },
        Cdr => match &args[0] {
            Value::Pair(p) => p.1.clone(),
            v => {
                return Err(PrimError::TypeError {
                    prim: Cdr,
                    expected: "pair",
                    got: v.to_string(),
                })
            }
        },
        NullP => Value::Bool(matches!(args[0], Value::Nil)),
        PairP => Value::Bool(matches!(args[0], Value::Pair(_))),
        Not => Value::Bool(!args[0].is_truthy()),
        EqP | EqvP => Value::Bool(eq_identity(&args[0], &args[1])),
        EqualP => Value::Bool(equal(&args[0], &args[1])),
        Add => Value::Int(
            int(p, &args[0])?.checked_add(int(p, &args[1])?).ok_or(PrimError::Overflow(p))?,
        ),
        Sub => Value::Int(
            int(p, &args[0])?.checked_sub(int(p, &args[1])?).ok_or(PrimError::Overflow(p))?,
        ),
        Mul => Value::Int(
            int(p, &args[0])?.checked_mul(int(p, &args[1])?).ok_or(PrimError::Overflow(p))?,
        ),
        Quotient => {
            let (a, b) = (int(p, &args[0])?, int(p, &args[1])?);
            if b == 0 {
                return Err(PrimError::DivisionByZero(p));
            }
            Value::Int(a.checked_div(b).ok_or(PrimError::Overflow(p))?)
        }
        Remainder => {
            let (a, b) = (int(p, &args[0])?, int(p, &args[1])?);
            if b == 0 {
                return Err(PrimError::DivisionByZero(p));
            }
            Value::Int(a.checked_rem(b).ok_or(PrimError::Overflow(p))?)
        }
        NumEq => Value::Bool(int(p, &args[0])? == int(p, &args[1])?),
        Lt => Value::Bool(int(p, &args[0])? < int(p, &args[1])?),
        Gt => Value::Bool(int(p, &args[0])? > int(p, &args[1])?),
        Le => Value::Bool(int(p, &args[0])? <= int(p, &args[1])?),
        Ge => Value::Bool(int(p, &args[0])? >= int(p, &args[1])?),
        ZeroP => Value::Bool(int(p, &args[0])? == 0),
        Add1 => Value::Int(int(p, &args[0])?.checked_add(1).ok_or(PrimError::Overflow(p))?),
        Sub1 => Value::Int(int(p, &args[0])?.checked_sub(1).ok_or(PrimError::Overflow(p))?),
        SymbolP => Value::Bool(matches!(args[0], Value::Sym(_))),
        NumberP => Value::Bool(matches!(args[0], Value::Int(_))),
        BooleanP => Value::Bool(matches!(args[0], Value::Bool(_))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(n: i64) -> Datum {
        Value::Int(n)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(apply_prim(Prim::Add, &[i(2), i(3)]), Ok(i(5)));
        assert_eq!(apply_prim(Prim::Sub, &[i(2), i(3)]), Ok(i(-1)));
        assert_eq!(apply_prim(Prim::Mul, &[i(4), i(3)]), Ok(i(12)));
        assert_eq!(apply_prim(Prim::Quotient, &[i(7), i(2)]), Ok(i(3)));
        assert_eq!(apply_prim(Prim::Remainder, &[i(7), i(2)]), Ok(i(1)));
        assert_eq!(apply_prim(Prim::Remainder, &[i(-7), i(2)]), Ok(i(-1)));
        assert_eq!(apply_prim(Prim::Add1, &[i(41)]), Ok(i(42)));
        assert_eq!(apply_prim(Prim::Sub1, &[i(43)]), Ok(i(42)));
    }

    #[test]
    fn arithmetic_errors() {
        assert_eq!(
            apply_prim(Prim::Quotient, &[i(1), i(0)]),
            Err(PrimError::DivisionByZero(Prim::Quotient))
        );
        assert_eq!(
            apply_prim(Prim::Add, &[i(i64::MAX), i(1)]),
            Err(PrimError::Overflow(Prim::Add))
        );
        assert!(matches!(
            apply_prim(Prim::Add, &[Value::Nil, i(1)]),
            Err(PrimError::TypeError { .. })
        ));
    }

    #[test]
    fn pairs_and_predicates() {
        let p = apply_prim(Prim::Cons, &[i(1), Value::Nil]).unwrap();
        assert_eq!(apply_prim(Prim::Car, std::slice::from_ref(&p)), Ok(i(1)));
        assert_eq!(apply_prim(Prim::Cdr, std::slice::from_ref(&p)), Ok(Value::Nil));
        assert_eq!(apply_prim(Prim::PairP, std::slice::from_ref(&p)), Ok(Value::Bool(true)));
        assert_eq!(apply_prim(Prim::NullP, &[p]), Ok(Value::Bool(false)));
        assert_eq!(apply_prim::<NoClosure>(Prim::NullP, &[Value::Nil]), Ok(Value::Bool(true)));
        assert!(matches!(apply_prim(Prim::Car, &[i(5)]), Err(PrimError::TypeError { .. })));
    }

    #[test]
    fn equality_flavours() {
        let a: Datum = Value::list([i(1), i(2)]);
        let b: Datum = Value::list([i(1), i(2)]);
        // equal? is structural…
        assert_eq!(apply_prim(Prim::EqualP, &[a.clone(), b.clone()]), Ok(Value::Bool(true)));
        // …eq? is identity on pairs…
        assert_eq!(apply_prim(Prim::EqP, &[a.clone(), b]), Ok(Value::Bool(false)));
        assert_eq!(apply_prim(Prim::EqP, &[a.clone(), a.clone()]), Ok(Value::Bool(true)));
        // …and by value on atoms.
        assert_eq!(
            apply_prim::<NoClosure>(Prim::EqP, &[Value::Sym("x".into()), Value::Sym("x".into())]),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn truthiness_and_not() {
        assert_eq!(apply_prim::<NoClosure>(Prim::Not, &[Value::Bool(false)]), Ok(Value::Bool(true)));
        assert_eq!(apply_prim::<NoClosure>(Prim::Not, &[Value::Int(0)]), Ok(Value::Bool(false)));
        assert_eq!(apply_prim::<NoClosure>(Prim::Not, &[Value::Nil]), Ok(Value::Bool(false)));
    }

    #[test]
    fn display_lists() {
        let v: Datum = Value::list([i(1), Value::Sym("a".into()), Value::list([i(2)])]);
        assert_eq!(v.to_string(), "(1 a (2))");
        assert_eq!(Datum::Nil.to_string(), "()");
    }

    #[test]
    fn datum_parse_and_embed() {
        let d = Datum::parse("(1 (2 3) x)").unwrap();
        assert_eq!(d.to_string(), "(1 (2 3) x)");
        let v: Value<()> = d.embed();
        assert_eq!(v.to_datum().unwrap(), d);
    }

    #[test]
    fn constants_convert() {
        let k = Constant::Pair(
            Arc::new(Constant::Sym("a".into())),
            Arc::new(Constant::Nil),
        );
        let v: Datum = Value::from_constant(&k);
        assert_eq!(v.to_string(), "(a)");
    }
}
