//! The standard call-by-value interpreter of Fig. 3.
//!
//! Function values capture the entire lexical environment, exactly as the
//! denotational-style clauses `E[(lambda (V) E)]ρ = λy.E[E]ρ[V ↦ y]` do —
//! in first-order Rust the "meta-level function" is a record of the
//! parameter, the body, and the captured environment.

use crate::value::{apply_prim, Value};
use crate::{Datum, Fuel, InterpError, Limits};
use pe_frontend::ast::{Expr, Prim, Program};
use std::rc::Rc;

/// A Fig. 3 closure: parameter, body, and the whole captured environment.
#[derive(Debug, Clone)]
pub struct EnvClosure<'p> {
    param: &'p str,
    body: &'p Expr,
    env: Env<'p>,
}

impl PartialEq for EnvClosure<'_> {
    fn eq(&self, other: &Self) -> bool {
        // Identity of the originating expression; environments are not
        // compared (equal?/eq? on procedures is unspecified in Scheme).
        std::ptr::eq(self.body, other.body)
    }
}

type V<'p> = Value<EnvClosure<'p>>;

/// A persistent environment (linked list; scopes are small).
#[derive(Debug, Clone)]
struct Env<'p>(Option<Rc<EnvNode<'p>>>);

#[derive(Debug)]
struct EnvNode<'p> {
    name: &'p str,
    val: V<'p>,
    rest: Env<'p>,
}

impl<'p> Env<'p> {
    fn empty() -> Env<'p> {
        Env(None)
    }

    fn bind(&self, name: &'p str, val: V<'p>) -> Env<'p> {
        Env(Some(Rc::new(EnvNode { name, val, rest: self.clone() })))
    }

    fn lookup(&self, name: &str) -> Option<&V<'p>> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.name == name {
                return Some(&node.val);
            }
            cur = &node.rest;
        }
        None
    }
}

struct Interp<'p> {
    prog: &'p Program,
    fuel: Fuel,
}

impl<'p> Interp<'p> {
    fn spend(&mut self) -> Result<(), InterpError> {
        Ok(self.fuel.step()?)
    }

    fn eval(&mut self, e: &'p Expr, env: &Env<'p>) -> Result<V<'p>, InterpError> {
        match e {
            Expr::Var(_, v) => env
                .lookup(v)
                .cloned()
                .ok_or_else(|| InterpError::Unbound(v.to_string())),
            Expr::Const(_, k) => Ok(Value::from_constant(k)),
            Expr::If(_, c, t, f) => {
                let c = self.eval(c, env)?;
                if c.is_truthy() {
                    self.eval(t, env)
                } else {
                    self.eval(f, env)
                }
            }
            Expr::Prim(_, op, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                if matches!(op, Prim::Cons) {
                    self.fuel.alloc(1)?;
                }
                Ok(apply_prim(*op, &vals)?)
            }
            Expr::Call(_, p, args) => {
                self.spend()?;
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                let def = self
                    .prog
                    .def(p)
                    .ok_or_else(|| InterpError::NoSuchProc(p.to_string()))?;
                let mut callee = Env::empty();
                for (param, val) in def.params.iter().zip(vals) {
                    callee = callee.bind(param, val);
                }
                // This engine runs callees on the host stack (Fig. 3 has
                // no explicit stack), so recursion depth is capped.
                self.fuel.enter_call()?;
                let r = self.eval(&def.body, &callee);
                self.fuel.exit_call();
                r
            }
            Expr::Let(_, v, rhs, body) => {
                let rhs = self.eval(rhs, env)?;
                self.eval(body, &env.bind(v, rhs))
            }
            Expr::Lambda(_, v, body) => {
                self.fuel.alloc(1)?;
                Ok(Value::Closure(EnvClosure { param: v, body, env: env.clone() }))
            }
            Expr::App(_, f, a) => {
                self.spend()?;
                let fv = self.eval(f, env)?;
                let av = self.eval(a, env)?;
                match fv {
                    Value::Closure(c) => {
                        self.fuel.enter_call()?;
                        let r = self.eval(c.body, &c.env.bind(c.param, av));
                        self.fuel.exit_call();
                        r
                    }
                    v => Err(InterpError::NotAProcedure(v.to_string())),
                }
            }
        }
    }
}

/// Runs `entry` of `prog` on first-order arguments.
///
/// # Errors
///
/// Returns an [`InterpError`] for dynamic type errors, a missing or
/// wrong-arity entry, exhausted fuel, or a higher-order result.
pub fn run(
    prog: &Program,
    entry: &str,
    args: &[Datum],
    limits: Limits,
) -> Result<Datum, InterpError> {
    run_with(prog, entry, args, limits, &mut pe_trace::NullSink)
}

/// Like [`run`], reporting step/alloc counters — and the governor
/// meter snapshot on a trap — to `sink`.
///
/// # Errors
///
/// As [`run`].
pub fn run_with(
    prog: &Program,
    entry: &str,
    args: &[Datum],
    limits: Limits,
    sink: &mut dyn pe_trace::Sink,
) -> Result<Datum, InterpError> {
    let def = prog
        .def(entry)
        .ok_or_else(|| InterpError::NoSuchProc(entry.to_string()))?;
    if def.params.len() != args.len() {
        return Err(InterpError::EntryArity {
            name: entry.to_string(),
            expected: def.params.len(),
            got: args.len(),
        });
    }
    let mut env = Env::empty();
    for (param, arg) in def.params.iter().zip(args) {
        env = env.bind(param, arg.embed());
    }
    let mut interp = Interp { prog, fuel: Fuel::new(&limits) };
    let result = interp
        .eval(&def.body, &env)
        .and_then(|v| v.to_datum().ok_or(InterpError::ResultNotFirstOrder));
    crate::flush_run(sink, &interp.fuel, result.is_err());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::parse_source;

    fn go(src: &str, entry: &str, args: &[Datum]) -> Result<Datum, InterpError> {
        run(&parse_source(src).unwrap(), entry, args, Limits::default())
    }

    #[test]
    fn constants_and_arith() {
        assert_eq!(go("(define (f) (+ 1 (* 2 3)))", "f", &[]), Ok(Datum::Int(7)));
        assert_eq!(go("(define (f) 'sym)", "f", &[]), Ok(Datum::Sym("sym".into())));
        assert_eq!(go("(define (f) #\\a)", "f", &[]), Ok(Datum::Char('a')));
    }

    #[test]
    fn lexical_scope_captures() {
        // The classic adder test: closures capture their creation env.
        let src = "(define (main) (let ((a 1))
                     (let ((add-a (lambda (b) (+ a b))))
                       (let ((a 100)) (add-a 10)))))";
        assert_eq!(go(src, "main", &[]), Ok(Datum::Int(11)));
    }

    #[test]
    fn shadowing_in_lambda() {
        let src = "(define (f x) ((lambda (x) (+ x 1)) (* x 2)))";
        assert_eq!(go(src, "f", &[Datum::Int(5)]), Ok(Datum::Int(11)));
    }

    #[test]
    fn recursion_through_definitions() {
        let src = "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))";
        assert_eq!(go(src, "fact", &[Datum::Int(10)]), Ok(Datum::Int(3_628_800)));
    }

    #[test]
    fn mutual_recursion() {
        let src = "(define (even? n) (if (zero? n) #t (odd? (- n 1))))
                   (define (odd? n) (if (zero? n) #f (even? (- n 1))))";
        assert_eq!(go(src, "even?", &[Datum::Int(10)]), Ok(Datum::Bool(true)));
        assert_eq!(go(src, "odd?", &[Datum::Int(10)]), Ok(Datum::Bool(false)));
    }

    #[test]
    fn applying_non_procedure_fails() {
        assert!(matches!(
            go("(define (f x) (x 1))", "f", &[Datum::Int(3)]),
            Err(InterpError::NotAProcedure(_))
        ));
    }

    #[test]
    fn quoted_structure() {
        assert_eq!(
            go("(define (f) (car (cdr '(a b c))))", "f", &[]),
            Ok(Datum::Sym("b".into()))
        );
    }
}
