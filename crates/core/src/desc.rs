//! Value descriptions — the partially static data of the two-level
//! interpreter (Fig. 7):
//!
//! ```text
//! desc ::= quote(K) | cons(desc, desc) | clos(ℓ, desc*) | cv(i)
//! ```
//!
//! A description is a compile-time view of a runtime value: fully known
//! (`quote`), a pair or closure with known shape but possibly unknown
//! components, or completely unknown (`cv` — a *configuration variable*
//! whose runtime value lives in the residual program).  Each `cons`/`clos`
//! carries its creation site so the §4.5 self-embedding test can detect
//! data that grows under dynamic control, and each `cv` carries the flow
//! analysis' closure-candidate set so The Trick can dispatch on it.

use crate::s0::S0Simple;
use pe_frontend::ast::Constant;
use pe_frontend::dast::LamId;
use pe_frontend::flow::LamSet;
use pe_intern::FxHashMap;
use std::sync::Arc;

/// A configuration variable identifier (paper: `cv(i)`).
pub type CvId = u32;

/// A configuration variable without a σ binding (or absent from a
/// renaming) — an internal invariant violation that the specializer
/// reports as [`crate::SpecError::Internal`] instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingCv(pub CvId);

impl std::fmt::Display for MissingCv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "configuration variable {} has no binding", self.0)
    }
}

impl std::error::Error for MissingCv {}

/// A value description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValDesc {
    /// A completely static value.
    Quote(Constant),
    /// A partially static pair, tagged with its creation site (the
    /// `DLabel` of the `cons` expression).
    Cons { site: u32, car: Arc<ValDesc>, cdr: Arc<ValDesc> },
    /// A partially static closure.
    Clos { lam: LamId, freevals: Vec<ValDesc> },
    /// A configuration variable: unknown at compile time; `cands` are the
    /// lambdas it may be a closure of (for The Trick).
    Cv { id: CvId, cands: LamSet },
}

impl ValDesc {
    /// Compile-time truthiness: `Some(b)` if statically decidable.
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            ValDesc::Quote(k) => Some(k.is_truthy()),
            ValDesc::Cons { .. } | ValDesc::Clos { .. } => Some(true),
            ValDesc::Cv { .. } => None,
        }
    }

    /// True if the description contains no configuration variable — the
    /// value is completely static.
    pub fn is_fully_static(&self) -> bool {
        match self {
            ValDesc::Quote(_) => true,
            ValDesc::Cons { car, cdr, .. } => car.is_fully_static() && cdr.is_fully_static(),
            ValDesc::Clos { freevals, .. } => freevals.iter().all(ValDesc::is_fully_static),
            ValDesc::Cv { .. } => false,
        }
    }

    /// If the description is first-order and fully static, its constant.
    pub fn as_constant(&self) -> Option<Constant> {
        match self {
            ValDesc::Quote(k) => Some(k.clone()),
            ValDesc::Cons { car, cdr, .. } => Some(Constant::Pair(
                Arc::new(car.as_constant()?),
                Arc::new(cdr.as_constant()?),
            )),
            ValDesc::Clos { .. } | ValDesc::Cv { .. } => None,
        }
    }

    /// Builds a fully static description from first-order data.
    pub fn of_constant(k: Constant) -> ValDesc {
        ValDesc::Quote(k)
    }

    /// The lambdas this value may be a closure of.
    pub fn closure_candidates(&self) -> LamSet {
        match self {
            ValDesc::Clos { lam, .. } => [*lam].into_iter().collect(),
            ValDesc::Cv { cands, .. } => cands.clone(),
            ValDesc::Quote(_) | ValDesc::Cons { .. } => LamSet::new(),
        }
    }

    /// `D[·]`-lifting: the residual expression that rebuilds this value
    /// at runtime.  `σ` maps configuration variables to their residual
    /// expressions.
    ///
    /// # Errors
    ///
    /// [`MissingCv`] if a configuration variable has no σ binding.
    pub fn residualize(&self, sigma: &FxHashMap<CvId, S0Simple>) -> Result<S0Simple, MissingCv> {
        match self {
            ValDesc::Quote(k) => Ok(S0Simple::Const(k.clone())),
            ValDesc::Cons { car, cdr, .. } => Ok(S0Simple::Prim(
                pe_frontend::Prim::Cons,
                vec![car.residualize(sigma)?, cdr.residualize(sigma)?],
            )),
            ValDesc::Clos { lam, freevals } => Ok(S0Simple::MakeClosure(
                lam.0,
                freevals
                    .iter()
                    .map(|d| d.residualize(sigma))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            ValDesc::Cv { id, .. } => sigma.get(id).cloned().ok_or(MissingCv(*id)),
        }
    }

    /// The §4.5 self-embedding test: does this description contain a
    /// `cons` or `clos` nested (strictly) below a node from the *same*
    /// creation site?  Such descriptions can grow without bounds under
    /// dynamic control and must be generalized.
    pub fn is_self_embedding(&self) -> bool {
        fn walk(d: &ValDesc, lams: &mut Vec<LamId>, sites: &mut Vec<u32>) -> bool {
            match d {
                ValDesc::Quote(_) | ValDesc::Cv { .. } => false,
                ValDesc::Cons { site, car, cdr } => {
                    if sites.contains(site) {
                        return true;
                    }
                    sites.push(*site);
                    let r = walk(car, lams, sites) || walk(cdr, lams, sites);
                    sites.pop();
                    r
                }
                ValDesc::Clos { lam, freevals } => {
                    if lams.contains(lam) {
                        return true;
                    }
                    lams.push(*lam);
                    let r = freevals.iter().any(|f| walk(f, lams, sites));
                    lams.pop();
                    r
                }
            }
        }
        walk(self, &mut Vec::new(), &mut Vec::new())
    }

    /// Collects the configuration variables in first-occurrence order
    /// (depth-first, left-to-right).
    pub fn collect_cvs(&self, out: &mut Vec<CvId>) {
        match self {
            ValDesc::Quote(_) => {}
            ValDesc::Cons { car, cdr, .. } => {
                car.collect_cvs(out);
                cdr.collect_cvs(out);
            }
            ValDesc::Clos { freevals, .. } => freevals.iter().for_each(|f| f.collect_cvs(out)),
            ValDesc::Cv { id, .. } => {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        }
    }

    /// Rewrites configuration variables through `map` (used when a memo
    /// entry's descriptions are renamed to the residual procedure's
    /// parameters).
    ///
    /// # Errors
    ///
    /// [`MissingCv`] if a configuration variable is absent from `map`.
    pub fn rename_cvs(&self, map: &FxHashMap<CvId, CvId>) -> Result<ValDesc, MissingCv> {
        match self {
            ValDesc::Quote(_) => Ok(self.clone()),
            ValDesc::Cons { site, car, cdr } => Ok(ValDesc::Cons {
                site: *site,
                car: Arc::new(car.rename_cvs(map)?),
                cdr: Arc::new(cdr.rename_cvs(map)?),
            }),
            ValDesc::Clos { lam, freevals } => Ok(ValDesc::Clos {
                lam: *lam,
                freevals: freevals
                    .iter()
                    .map(|f| f.rename_cvs(map))
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            ValDesc::Cv { id, cands } => Ok(ValDesc::Cv {
                id: *map.get(id).ok_or(MissingCv(*id))?,
                cands: cands.clone(),
            }),
        }
    }

    /// The canonical shape of this description with configuration
    /// variables replaced by their canonical index from `index`.
    pub fn shape(&self, index: &FxHashMap<CvId, u32>) -> DescShape {
        match self {
            ValDesc::Quote(k) => DescShape::Quote(k.clone()),
            ValDesc::Cons { site, car, cdr } => DescShape::Cons(
                *site,
                Box::new(car.shape(index)),
                Box::new(cdr.shape(index)),
            ),
            ValDesc::Clos { lam, freevals } => {
                DescShape::Clos(*lam, freevals.iter().map(|f| f.shape(index)).collect())
            }
            // `index` is always built from this very description set, so
            // a miss cannot happen; the sentinel keeps shape() total.
            ValDesc::Cv { id, cands } => {
                DescShape::Cv(index.get(id).copied().unwrap_or(u32::MAX), cands.clone())
            }
        }
    }

    /// Description tree size (guards against key explosion).
    pub fn size(&self) -> usize {
        match self {
            ValDesc::Quote(_) | ValDesc::Cv { .. } => 1,
            ValDesc::Cons { car, cdr, .. } => 1 + car.size() + cdr.size(),
            ValDesc::Clos { freevals, .. } => {
                1 + freevals.iter().map(ValDesc::size).sum::<usize>()
            }
        }
    }
}

/// A description shape: like [`ValDesc`] but with configuration variables
/// replaced by canonical indices — two specialization states with equal
/// shapes are the *same* state up to renaming of unknowns, which is the
/// memoization equality of the specializer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DescShape {
    /// Fully static constant.
    Quote(Constant),
    /// Pair from a creation site.
    Cons(u32, Box<DescShape>, Box<DescShape>),
    /// Closure with component shapes.
    Clos(LamId, Vec<DescShape>),
    /// Canonical configuration variable with its dispatch candidates
    /// (candidates are part of the state: different candidate sets
    /// generate different dispatch code).
    Cv(u32, LamSet),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(id: CvId) -> ValDesc {
        ValDesc::Cv { id, cands: LamSet::new() }
    }

    fn kint(n: i64) -> ValDesc {
        ValDesc::Quote(Constant::Int(n))
    }

    fn cons(site: u32, a: ValDesc, d: ValDesc) -> ValDesc {
        ValDesc::Cons { site, car: Arc::new(a), cdr: Arc::new(d) }
    }

    fn clos(lam: u32, fvs: Vec<ValDesc>) -> ValDesc {
        ValDesc::Clos { lam: LamId(lam), freevals: fvs }
    }

    #[test]
    fn truthiness() {
        assert_eq!(kint(0).truthiness(), Some(true));
        assert_eq!(ValDesc::Quote(Constant::Bool(false)).truthiness(), Some(false));
        assert_eq!(cons(1, kint(1), kint(2)).truthiness(), Some(true));
        assert_eq!(clos(0, vec![]).truthiness(), Some(true));
        assert_eq!(cv(3).truthiness(), None);
    }

    #[test]
    fn self_embedding_detection() {
        // Same cons site nested: critical.
        assert!(cons(7, kint(1), cons(7, kint(2), kint(3))).is_self_embedding());
        // Different sites: fine.
        assert!(!cons(7, kint(1), cons(8, kint(2), kint(3))).is_self_embedding());
        // Same lambda nested in a freeval: critical.
        assert!(clos(24, vec![cv(0), clos(24, vec![cv(1)])]).is_self_embedding());
        // Different lambdas: fine (the paper's identity-in-inner case).
        assert!(!clos(24, vec![cv(0), clos(10, vec![])]).is_self_embedding());
        // Sibling occurrences of the same site are NOT self-embedding.
        assert!(!cons(9, cons(7, kint(1), kint(2)), cons(7, kint(3), kint(4)))
            .is_self_embedding());
    }

    #[test]
    fn residualize_lifts_structure() -> Result<(), MissingCv> {
        let mut sigma = FxHashMap::default();
        sigma.insert(0, S0Simple::Var("cv-vals-$1".into()));
        let d = cons(1, ValDesc::Quote(Constant::Sym("foo".into())), cv(0));
        let e = d.residualize(&sigma)?;
        let s = format!("{:?}", e);
        assert!(s.contains("Cons") || matches!(e, S0Simple::Prim(pe_frontend::Prim::Cons, _)));
        let d = clos(5, vec![cv(0), kint(3)]);
        let e = d.residualize(&sigma)?;
        assert!(
            matches!(&e, S0Simple::MakeClosure(5, args)
                if args.len() == 2 && args[0] == S0Simple::Var("cv-vals-$1".into())),
            "expected make-closure, got {e:?}"
        );
        Ok(())
    }

    #[test]
    fn missing_cv_is_an_error_not_a_panic() {
        let sigma = FxHashMap::default();
        assert_eq!(cv(9).residualize(&sigma), Err(MissingCv(9)));
        let map = FxHashMap::default();
        assert_eq!(cv(9).rename_cvs(&map), Err(MissingCv(9)));
    }

    #[test]
    fn cv_collection_order_and_sharing() {
        let d = cons(1, cv(5), cons(2, cv(3), cv(5)));
        let mut cvs = Vec::new();
        d.collect_cvs(&mut cvs);
        assert_eq!(cvs, vec![5, 3], "first-occurrence order, deduplicated");
    }

    #[test]
    fn shapes_identify_states_up_to_renaming() {
        let d1 = cons(1, cv(10), cv(11));
        let d2 = cons(1, cv(99), cv(3));
        let idx1: FxHashMap<CvId, u32> = [(10, 0), (11, 1)].into_iter().collect();
        let idx2: FxHashMap<CvId, u32> = [(99, 0), (3, 1)].into_iter().collect();
        assert_eq!(d1.shape(&idx1), d2.shape(&idx2));
        // Sharing matters: (cv a, cv a) ≠ (cv a, cv b).
        let d3 = cons(1, cv(7), cv(7));
        let idx3: FxHashMap<CvId, u32> = [(7, 0)].into_iter().collect();
        assert_ne!(d3.shape(&idx3), d1.shape(&idx1));
    }

    #[test]
    fn as_constant_on_closed_data() {
        let d = cons(1, kint(1), ValDesc::Quote(Constant::Nil));
        assert_eq!(
            d.as_constant(),
            Some(Constant::Pair(Arc::new(Constant::Int(1)), Arc::new(Constant::Nil)))
        );
        assert_eq!(cons(1, cv(0), kint(1)).as_constant(), None);
        assert_eq!(clos(0, vec![]).as_constant(), None);
    }
}
