//! The paper's primary contribution: an optimizing compiler from
//! higher-order recursion equations (a purely functional Scheme subset)
//! to first-order tail-recursive Scheme (S₀), obtained as the
//! specializer-projection reading of the two-level interpreter of Fig. 7.
//!
//! The compiler performs, in one pass,
//!
//! * **closure conversion** (higher-order removal — Reynolds
//!   defunctionalization, residualizing `make-closure` /
//!   `closure-label` / `closure-freeval` and sequential label dispatch),
//! * **conversion to tail form** (evaluation contexts become closures; a
//!   critical context stack becomes an ordinary runtime list),
//! * **aggressive constant propagation over partially static data**
//!   (value descriptions `quote/cons/clos/cv`), and
//! * with static entry arguments, **program specialization** — the first
//!   specializer projection (`append-$1` in the paper's §1 example).
//!
//! ```
//! use pe_core::{compile, CompileOptions};
//! use pe_frontend::{desugar, parse_source};
//!
//! let p = parse_source(
//!     "(define (append x y) (cps-append x y (lambda (v) v)))
//!      (define (cps-append x y c)
//!        (if (null? x) (c y)
//!            (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
//! ).unwrap();
//! let d = desugar(&p).unwrap();
//! let s0 = compile(&d, "append", &CompileOptions::default()).unwrap();
//! // The residual program is first-order and tail-recursive — the
//! // `pe-verify` crate checks this property statically.
//! assert!(!s0.to_source().contains("lambda"));
//! assert!(s0.to_source().contains("make-closure"));
//! ```

pub mod desc;
pub mod eval;
pub mod spec;

/// The residual optimizer, re-exported from [`pe_flow::opt`] under its
/// historical path (the syntactic passes lived here before the flow
/// framework subsumed them).
pub mod post {
    pub use pe_flow::opt::*;
}

/// The residual language S₀, re-exported from [`pe_flow::s0`] (the
/// definition moved below pe-core so the dataflow crate can own it).
pub mod s0 {
    pub use pe_flow::s0::*;
}

pub use desc::{CvId, DescShape, MissingCv, ValDesc};
pub use pe_governor::{Fuel, Limits, Trap};
pub use s0::{S0Proc, S0Program, S0Simple, S0Tail};
pub use spec::{
    CompileOptions, ControlEvent, ControlKind, GenStrategy, MemoSnapshot, Spec, SpecCounters,
    SpecError,
};

use pe_frontend::dast::DProgram;
use pe_frontend::flow::FlowAnalysis;
use pe_frontend::gen_analysis::GenAnalysis;
use pe_interp::Datum;
use pe_trace::{Counter, Phase, Sink};

/// The audit trail of one compile: what the size-change termination
/// analysis predicted and what the dynamic control machinery actually
/// did.  Pass 7 of `pe-verify` checks the two against each other.
#[derive(Debug, Clone, Default)]
pub struct CompileAudit {
    /// False when [`CompileOptions::sct`] was off — the verdict tables
    /// are then empty and there is nothing to audit.
    pub enabled: bool,
    /// Per-procedure/per-label verdicts and slot annotations.
    pub verdicts: pe_sct::Verdicts,
    /// Analysis effort and classification counts.
    pub stats: pe_sct::SctStats,
    /// The specializer's control log, in specialization order.
    pub events: Vec<ControlEvent>,
}

/// Compiles `entry` (all parameters dynamic): closure conversion + tail
/// conversion + constant folding, then post-processing if enabled.
///
/// # Errors
///
/// See [`SpecError`].
pub fn compile(
    dp: &DProgram,
    entry: &str,
    opts: &CompileOptions,
) -> Result<S0Program, SpecError> {
    compile_with(dp, entry, opts, &mut pe_trace::NullSink)
}

/// Like [`compile`], emitting cfa/specialize/post phase spans, the
/// specializer's event counters, and residual size counters to `sink`.
///
/// # Errors
///
/// See [`SpecError`].
pub fn compile_with(
    dp: &DProgram,
    entry: &str,
    opts: &CompileOptions,
    sink: &mut dyn Sink,
) -> Result<S0Program, SpecError> {
    compile_audited_with(dp, entry, opts, sink).map(|(p, _)| p)
}

/// Like [`compile_with`], additionally returning the [`CompileAudit`]:
/// the SCT verdict tables plus the specializer's control log, ready for
/// pass 7 of `pe-verify`.
///
/// # Errors
///
/// See [`SpecError`]; a program the termination analysis proves
/// divergent is refused with [`SpecError::SctDiverges`] before
/// specialization starts.
pub fn compile_audited_with(
    dp: &DProgram,
    entry: &str,
    opts: &CompileOptions,
    sink: &mut dyn Sink,
) -> Result<(S0Program, CompileAudit), SpecError> {
    let t = pe_trace::begin(sink, Phase::Cfa);
    let flow = FlowAnalysis::analyze(dp);
    let gen = GenAnalysis::analyze(dp, &flow);
    pe_trace::end(sink, t);
    let sct = run_sct(dp, &flow, entry, opts, sink)?;
    let t = pe_trace::begin(sink, Phase::Specialize);
    let mut spec = Spec::new(dp, &flow, &gen, opts.clone());
    if let Some(a) = &sct {
        spec = spec.with_sct(a.verdicts.clone());
    }
    let r = spec.compile_audited_with(entry, sink);
    pe_trace::end(sink, t);
    let (p, events) = r?;
    let p = finish_traced(p, opts, sink)?;
    Ok((p, assemble_audit(sct, events)))
}

/// Like [`compile_audited_with`], warm-starting the specializer from a
/// [`MemoSnapshot`] and capturing a fresh snapshot of the finished memo
/// table.  This is the compile service's hot path:
///
/// * `warm = None` — a cold compile that additionally pays one clone of
///   the memo table to produce the snapshot.
/// * `warm = Some(snap)` where `snap` came from compiling the **same
///   entry** of the same program with the same options — the entry
///   state hits the memo immediately, no specialization work happens,
///   and the residual program is byte-identical to the cold one.
/// * `warm = Some(snap)` from a **different entry** of the same program
///   — every specialization point the earlier run reached is reused;
///   only genuinely new points are specialized.  The result is
///   semantically equivalent to a cold compile of that entry but not
///   byte-identical (procedure numbering continues from the snapshot).
///
/// Restoring a snapshot from a *different* program or different options
/// is a logic error the engine cannot detect — callers must key
/// snapshots by a content fingerprint (see `pe-serve`).
///
/// # Errors
///
/// See [`SpecError`].
#[allow(clippy::type_complexity)]
pub fn compile_warm_audited_with(
    dp: &DProgram,
    entry: &str,
    opts: &CompileOptions,
    warm: Option<&MemoSnapshot>,
    sink: &mut dyn Sink,
) -> Result<(S0Program, CompileAudit, MemoSnapshot), SpecError> {
    let t = pe_trace::begin(sink, Phase::Cfa);
    let flow = FlowAnalysis::analyze(dp);
    let gen = GenAnalysis::analyze(dp, &flow);
    pe_trace::end(sink, t);
    let sct = run_sct(dp, &flow, entry, opts, sink)?;
    let t = pe_trace::begin(sink, Phase::Specialize);
    let mut spec = Spec::new(dp, &flow, &gen, opts.clone());
    if let Some(a) = &sct {
        spec = spec.with_sct(a.verdicts.clone());
    }
    if let Some(snap) = warm {
        spec = spec.with_snapshot(snap);
        if sink.enabled() {
            sink.counter(Counter::WarmStarts, 1);
        }
    }
    let r = spec.compile_snapshot_with(entry, sink);
    pe_trace::end(sink, t);
    let (p, events, snap) = r?;
    let p = finish_traced(p, opts, sink)?;
    Ok((p, assemble_audit(sct, events), snap))
}

/// Specializes `entry` with respect to the static argument slots — the
/// first specializer projection.  `slots[i] = Some(v)` fixes parameter
/// `i` to `v`; `None` leaves it a parameter of the residual `entry-$1`.
///
/// # Errors
///
/// See [`SpecError`].
pub fn specialize(
    dp: &DProgram,
    entry: &str,
    slots: &[Option<Datum>],
    opts: &CompileOptions,
) -> Result<S0Program, SpecError> {
    specialize_with(dp, entry, slots, opts, &mut pe_trace::NullSink)
}

/// Like [`specialize`], emitting phase spans and event counters to
/// `sink`.
///
/// # Errors
///
/// See [`SpecError`].
pub fn specialize_with(
    dp: &DProgram,
    entry: &str,
    slots: &[Option<Datum>],
    opts: &CompileOptions,
    sink: &mut dyn Sink,
) -> Result<S0Program, SpecError> {
    specialize_audited_with(dp, entry, slots, opts, sink).map(|(p, _)| p)
}

/// Like [`specialize_with`], additionally returning the
/// [`CompileAudit`] (see [`compile_audited_with`]).
///
/// # Errors
///
/// See [`SpecError`].
pub fn specialize_audited_with(
    dp: &DProgram,
    entry: &str,
    slots: &[Option<Datum>],
    opts: &CompileOptions,
    sink: &mut dyn Sink,
) -> Result<(S0Program, CompileAudit), SpecError> {
    let t = pe_trace::begin(sink, Phase::Cfa);
    let flow = FlowAnalysis::analyze(dp);
    let gen = GenAnalysis::analyze(dp, &flow);
    pe_trace::end(sink, t);
    let sct = run_sct(dp, &flow, entry, opts, sink)?;
    let t = pe_trace::begin(sink, Phase::Specialize);
    let mut spec = Spec::new(dp, &flow, &gen, opts.clone());
    if let Some(a) = &sct {
        spec = spec.with_sct(a.verdicts.clone());
    }
    let r = spec.specialize_audited_with(entry, slots, sink);
    pe_trace::end(sink, t);
    let (p, events) = r?;
    let p = finish_traced(p, opts, sink)?;
    Ok((p, assemble_audit(sct, events)))
}

/// Runs pe-sct under its own phase span, reports its counters, and
/// turns a proven divergence into the early-reject error.
fn run_sct(
    dp: &DProgram,
    flow: &FlowAnalysis,
    entry: &str,
    opts: &CompileOptions,
    sink: &mut dyn Sink,
) -> Result<Option<pe_sct::SctAnalysis>, SpecError> {
    if !opts.sct {
        return Ok(None);
    }
    let t = pe_trace::begin(sink, Phase::Sct);
    let a = pe_sct::analyze(dp, flow, entry);
    pe_trace::end(sink, t);
    if sink.enabled() {
        for (c, v) in [
            (Counter::SctGraphs, a.stats.graphs),
            (Counter::SctCompositions, a.stats.compositions),
            (Counter::SctBounded, a.stats.bounded),
            (Counter::SctUnbounded, a.stats.unbounded),
            (Counter::SctUnknown, a.stats.unknown),
        ] {
            if v > 0 {
                sink.counter(c, v);
            }
        }
    }
    if let Some(trap) = &a.divergence {
        if sink.enabled() {
            sink.counter(Counter::SctEarlyRejects, 1);
        }
        return Err(SpecError::SctDiverges(trap.clone()));
    }
    Ok(Some(a))
}

fn assemble_audit(sct: Option<pe_sct::SctAnalysis>, events: Vec<ControlEvent>) -> CompileAudit {
    match sct {
        Some(a) => CompileAudit { enabled: true, verdicts: a.verdicts, stats: a.stats, events },
        None => CompileAudit { events, ..CompileAudit::default() },
    }
}

/// Post-processes under a `post` span, runs the flow optimizer under a
/// `flow` span, and reports residual size plus the flow counters.
fn finish_traced(
    p: S0Program,
    opts: &CompileOptions,
    sink: &mut dyn Sink,
) -> Result<S0Program, SpecError> {
    let p = if opts.postprocess {
        let t = pe_trace::begin(sink, Phase::Post);
        let q = post::postprocess_traced(p, sink);
        pe_trace::end(sink, t);
        q
    } else {
        p
    };
    let p = if opts.flow {
        // Graceful degradation: an exhausted budget keeps the
        // (already correct) unoptimized program instead of failing
        // the compile.  The fallback clone happens before the span
        // opens — the flow span must cover only optimizer time, so
        // the per-procedure attribution can sum to it.
        let fallback = p.clone();
        let t = pe_trace::begin(sink, Phase::Flow);
        let mut fuel = Fuel::new(&opts.limits);
        let (q, stats) = pe_flow::optimize_with_traced(
            p,
            &pe_flow::FlowOptions::default(),
            &mut fuel,
            sink,
        )
        .unwrap_or_else(|_| (fallback, pe_flow::FlowStats::default()));
        pe_trace::end(sink, t);
        if sink.enabled() {
            sink.counter(Counter::CopiesPropagated, stats.copies_propagated as u64);
            sink.counter(Counter::DeadBindings, stats.dead_bindings as u64);
            sink.counter(Counter::SlotsPruned, stats.slots_pruned as u64);
            sink.counter(Counter::ArmsFolded, stats.arms_folded as u64);
            sink.counter(Counter::CfgNodes, stats.cfg_nodes as u64);
            sink.counter(Counter::CfgEdges, stats.cfg_edges as u64);
        }
        q
    } else {
        p
    };
    if sink.enabled() {
        sink.counter(Counter::ResidualProcs, p.procs.len() as u64);
        sink.counter(Counter::ResidualNodes, p.size() as u64);
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::{desugar, parse_source};
    use pe_interp::Limits;

    type R = Result<(), Box<dyn std::error::Error>>;

    /// Asserts the flow verifier finds no errors in a residual program.
    fn assert_flow_clean(s0: &S0Program) {
        let mut fuel = Fuel::new(&pe_governor::Limits::default());
        let diags = pe_flow::check(s0, &mut fuel).expect("flow check in budget");
        let errs: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == pe_flow::FlowSeverity::Error)
            .collect();
        assert!(errs.is_empty(), "ill-formed residual program: {errs:?}\n{s0}");
    }

    const CPS_APPEND: &str = "(define (append x y) (cps-append x y (lambda (v) v)))
         (define (cps-append x y c)
           (if (null? x) (c y)
               (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";

    fn compile_src(
        src: &str,
        entry: &str,
        opts: &CompileOptions,
    ) -> Result<S0Program, Box<dyn std::error::Error>> {
        let p = parse_source(src)?;
        let d = desugar(&p)?;
        let s0 = compile(&d, entry, opts)?;
        assert_flow_clean(&s0);
        Ok(s0)
    }

    fn run_s0(p: &S0Program, args: &[Datum]) -> Result<Datum, pe_interp::InterpError> {
        eval::run(p, args, Limits::default())
    }

    #[test]
    fn compile_cps_append_offline() -> R {
        let s0 = compile_src(CPS_APPEND, "append", &CompileOptions::default())?;
        let r = run_s0(&s0, &[Datum::parse("(1 2 3)")?, Datum::parse("(4 5)")?])?;
        assert_eq!(r.to_string(), "(1 2 3 4 5)");
        // Closure conversion is visible in the residual code.
        let src = s0.to_source();
        assert!(src.contains("make-closure"), "{src}");
        assert!(src.contains("closure-label"), "{src}");
        Ok(())
    }

    #[test]
    fn compile_cps_append_online() -> R {
        let opts =
            CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() };
        let s0 = compile_src(CPS_APPEND, "append", &opts)?;
        let r = run_s0(&s0, &[Datum::parse("(1 2)")?, Datum::parse("(3)")?])?;
        assert_eq!(r.to_string(), "(1 2 3)");
        Ok(())
    }

    #[test]
    fn paper_section1_specialization() -> R {
        // (append '(foo bar) y) specializes to
        //   (define (append-$1 y) (cons 'foo (cons 'bar y)))
        let p = parse_source(CPS_APPEND)?;
        let d = desugar(&p)?;
        // The online strategy propagates the most static information —
        // required to reproduce the paper's fully collapsed output.
        let opts =
            CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() };
        let s0 = specialize(&d, "append", &[Some(Datum::parse("(foo bar)")?), None], &opts)?;
        assert_flow_clean(&s0);
        assert_eq!(s0.procs.len(), 1, "fully collapsed:\n{s0}");
        let src = s0.to_source();
        assert!(src.contains("append-$1"), "{src}");
        assert!(src.contains("(cons (quote foo) (cons (quote bar) y))"), "{src}");
        // And it computes append.
        let r = run_s0(&s0, &[Datum::parse("(baz)")?])?;
        assert_eq!(r.to_string(), "(foo bar baz)");
        Ok(())
    }

    #[test]
    fn compile_tak_both_strategies() -> R {
        let src = "(define (tak x y z)
             (if (not (< y x)) z
                 (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))";
        for strategy in [GenStrategy::Offline, GenStrategy::Online] {
            let opts = CompileOptions { strategy, ..CompileOptions::default() };
            let s0 = compile_src(src, "tak", &opts)?;
            let r = run_s0(&s0, &[Datum::Int(8), Datum::Int(4), Datum::Int(2)])?;
            assert_eq!(r, Datum::Int(3), "{strategy:?}\n{s0}");
        }
        Ok(())
    }

    #[test]
    fn compile_fib_contexts_become_stack() -> R {
        let src = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
        let s0 = compile_src(src, "fib", &CompileOptions::default())?;
        assert_eq!(run_s0(&s0, &[Datum::Int(15)])?, Datum::Int(610));
        // Non-tail recursion forces an explicit closure stack: the
        // residual program manipulates it with cons/car/cdr.
        let text = s0.to_source();
        assert!(text.contains("make-closure"), "{text}");
        Ok(())
    }

    #[test]
    fn constant_propagation_through_static_if() -> R {
        let src = "(define (f x) (if (zero? 0) (+ x 1) (boom x)))
                   (define (boom x) (boom x))";
        let s0 = compile_src(src, "f", &CompileOptions::default())?;
        // The dead diverging branch is gone.
        assert!(!s0.to_source().contains("boom"), "{s0}");
        assert_eq!(run_s0(&s0, &[Datum::Int(41)])?, Datum::Int(42));
        Ok(())
    }

    #[test]
    fn higher_order_removal_is_complete() -> R {
        // Residual programs are first-order by the language preservation
        // property: only closure ADT operations remain, no lambdas.
        let src = "(define (main n)
                     (let ((add (lambda (a) (lambda (b) (+ a b))))
                           (twice (lambda (f) (lambda (x) (f (f x))))))
                       ((twice (add n)) 10)))";
        let s0 = compile_src(src, "main", &CompileOptions::default())?;
        assert_eq!(run_s0(&s0, &[Datum::Int(5)])?, Datum::Int(20));
        assert!(!s0.to_source().contains("lambda"), "{s0}");
        Ok(())
    }

    #[test]
    fn omega_is_rejected_statically() -> R {
        let src = "(define (omega d) ((lambda (x) (x x)) (lambda (x) (x x))))";
        let p = parse_source(src)?;
        let d = desugar(&p)?;
        let r = compile(&d, "omega", &CompileOptions::default());
        assert!(
            matches!(r, Err(SpecError::SctDiverges(Trap::StaticDivergence { .. }))),
            "Ω must be refused before specialization, got {r:?}"
        );
        Ok(())
    }

    #[test]
    fn omega_exhausts_depth_without_sct() -> R {
        // With the analysis off, Ω still cannot loop the compiler: the
        // fuel-path backstops catch it, as before pe-sct existed.
        let src = "(define (omega d) ((lambda (x) (x x)) (lambda (x) (x x))))";
        let p = parse_source(src)?;
        let d = desugar(&p)?;
        let opts = CompileOptions { sct: false, ..CompileOptions::default() };
        let r = compile(&d, "omega", &opts);
        assert!(
            matches!(r, Err(SpecError::DepthExceeded) | Err(SpecError::Budget { .. })),
            "specializing Ω must hit a budget, got {r:?}"
        );
        Ok(())
    }

    #[test]
    fn sct_on_and_off_agree_semantically() -> R {
        // The verdict tables only move *where* generalization happens;
        // residual programs must compute the same function.
        let srcs: &[(&str, &str, &[Datum])] = &[
            (CPS_APPEND, "append", &[Datum::parse("(1 2)")?, Datum::parse("(3 4)")?]),
            (
                "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
                "fib",
                &[Datum::Int(12)],
            ),
        ];
        for (src, entry, args) in srcs {
            let on = compile_src(src, entry, &CompileOptions::default())?;
            let off = compile_src(
                src,
                entry,
                &CompileOptions { sct: false, ..CompileOptions::default() },
            )?;
            assert_eq!(run_s0(&on, args)?, run_s0(&off, args)?, "{entry}");
        }
        Ok(())
    }

    #[test]
    fn audit_reports_anticipated_flushes() -> R {
        // fib's non-tail recursion flushes the context stack; with SCT
        // on every flush lands at a statically annotated label.
        let src = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
        let p = parse_source(src)?;
        let d = desugar(&p)?;
        let (_, audit) = compile_audited_with(
            &d,
            "fib",
            &CompileOptions::default(),
            &mut pe_trace::NullSink,
        )?;
        assert!(audit.enabled);
        assert!(
            audit.events.iter().any(|e| e.kind == spec::ControlKind::StackEager),
            "{:?}",
            audit.events
        );
        assert!(
            !audit.events.iter().any(|e| e.kind == spec::ControlKind::StackFlush),
            "every flush is anticipated: {:?}",
            audit.events
        );
        Ok(())
    }

    #[test]
    fn applying_a_non_procedure_residualizes_fail() -> R {
        let src = "(define (f x) (if x ((g x) 1) 0)) (define (g x) 5)";
        let p = parse_source(src)?;
        let d = desugar(&p)?;
        let s0 = compile(&d, "f", &CompileOptions::default())?;
        // Taking the bad branch faults at run time; the good branch works.
        assert_eq!(
            eval::run(&s0, &[Datum::Bool(false)], Limits::default()),
            Ok(Datum::Int(0))
        );
        assert!(eval::run(&s0, &[Datum::Bool(true)], Limits::default()).is_err());
        Ok(())
    }

    #[test]
    fn entry_arity_is_checked() -> R {
        let p = parse_source("(define (f x) x)")?;
        let d = desugar(&p)?;
        let r = specialize(&d, "f", &[], &CompileOptions::default());
        assert!(matches!(r, Err(SpecError::EntryArity { .. })));
        let r = compile(&d, "nope", &CompileOptions::default());
        assert!(matches!(r, Err(SpecError::NoSuchProc(_))));
        Ok(())
    }

    #[test]
    fn deriv_like_symbolic_program() -> R {
        let src = r"
(define (deriv e)
  (if (symbol? e) (if (eq? e 'x) 1 0)
      (if (eq? (car e) '+)
          (cons '+ (cons (deriv (car (cdr e))) (cons (deriv (car (cdr (cdr e)))) '())))
          (if (eq? (car e) '*)
              (cons '+
                (cons (cons '* (cons (car (cdr e)) (cons (deriv (car (cdr (cdr e)))) '())))
                  (cons (cons '* (cons (deriv (car (cdr e))) (cons (car (cdr (cdr e))) '())))
                    '())))
              e))))";
        let s0 = compile_src(src, "deriv", &CompileOptions::default())?;
        let input = Datum::parse("(+ (* x x) x)")?;
        let r = run_s0(&s0, std::slice::from_ref(&input))?;
        // Reference: the tail interpreter.
        let p = parse_source(src)?;
        let d = desugar(&p)?;
        let expect = pe_interp::tail::run(&d, "deriv", &[input], Limits::default())?;
        assert_eq!(r, expect);
        Ok(())
    }

    #[test]
    fn specializer_unfolds_static_recursion() -> R {
        // Power with static exponent: x^5 unfolds to straight-line code.
        let src = "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))";
        let p = parse_source(src)?;
        let d = desugar(&p)?;
        let opts =
            CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() };
        let s0 = specialize(&d, "power", &[None, Some(Datum::Int(5))], &opts)?;
        assert_flow_clean(&s0);
        assert_eq!(run_s0(&s0, &[Datum::Int(2)])?, Datum::Int(32));
        // No residual conditional or recursion: the loop is fully unrolled.
        let text = s0.to_source();
        assert!(!text.contains("(if "), "{text}");
        Ok(())
    }

    /// Sums every delta recorded for one counter.
    fn counter_total(events: &[pe_trace::Event], c: Counter) -> u64 {
        events
            .iter()
            .filter_map(|e| match e {
                pe_trace::Event::Counter { counter, delta } if *counter == c => Some(*delta),
                _ => None,
            })
            .sum()
    }

    #[test]
    fn warm_recompile_same_entry_is_byte_identical() -> R {
        let p = parse_source(CPS_APPEND)?;
        let d = desugar(&p)?;
        let opts = CompileOptions::default();
        let (cold, _, snap) =
            compile_warm_audited_with(&d, "append", &opts, None, &mut pe_trace::NullSink)?;
        assert!(!snap.is_empty(), "a real compile memoizes at least the entry point");
        assert!(snap.points() >= snap.procs(), "every proc has a memo key");
        let mut sink = pe_trace::CollectingSink::new();
        let (warm, _, snap2) =
            compile_warm_audited_with(&d, "append", &opts, Some(&snap), &mut sink)?;
        // The warm run replays entirely from the memo table...
        assert_eq!(cold.to_source(), warm.to_source());
        let ev = sink.events();
        assert_eq!(counter_total(ev, Counter::MemoMisses), 0, "no new points on warm path");
        assert!(counter_total(ev, Counter::MemoHits) >= 1);
        assert_eq!(counter_total(ev, Counter::WarmStarts), 1);
        // ...and the re-captured snapshot is as good as the first.
        assert_eq!(snap.points(), snap2.points());
        assert_eq!(snap.procs(), snap2.procs());
        let r = run_s0(&warm, &[Datum::parse("(1 2)")?, Datum::parse("(3)")?])?;
        assert_eq!(r.to_string(), "(1 2 3)");
        Ok(())
    }

    #[test]
    fn warm_snapshot_across_entries_is_semantically_sound() -> R {
        // Warm-starting a *different* entry of the same program must
        // stay correct: shared points are reused, new ones specialize.
        let p = parse_source(CPS_APPEND)?;
        let d = desugar(&p)?;
        let opts = CompileOptions::default();
        let (_, _, snap) =
            compile_warm_audited_with(&d, "append", &opts, None, &mut pe_trace::NullSink)?;
        let mut sink = pe_trace::CollectingSink::new();
        let (warm, _, _) =
            compile_warm_audited_with(&d, "cps-append", &opts, Some(&snap), &mut sink)?;
        assert_flow_clean(&warm);
        let ev = sink.events();
        assert_eq!(
            counter_total(ev, Counter::MemoHits) + counter_total(ev, Counter::MemoMisses),
            counter_total(ev, Counter::MemoLookups),
            "hit/miss accounting stays exact on the warm path"
        );
        let cold = compile_src(CPS_APPEND, "cps-append", &opts)?;
        // Identity continuation: (cps-append '(1 2) '(3) id) == '(1 2 3).
        // Build the closure argument indirectly by running each program's
        // own entry against a first-order encoding-free call: both
        // residual programs take (x y c), so compare them on the same
        // dynamic closure value produced by their shared runtime.
        for (prog, tag) in [(&warm, "warm"), (&cold, "cold")] {
            assert!(!prog.to_source().contains("lambda"), "{tag} stays first-order");
        }
        Ok(())
    }

    #[test]
    fn no_postprocess_keeps_sl_eval_chain() -> R {
        let opts = CompileOptions { postprocess: false, ..CompileOptions::default() };
        let s0 = compile_src(CPS_APPEND, "append", &opts)?;
        assert!(s0.to_source().contains("sl-eval-$"), "{s0}");
        let r = run_s0(&s0, &[Datum::parse("(1)")?, Datum::parse("(2)")?])?;
        assert_eq!(r.to_string(), "(1 2)");
        Ok(())
    }
}
