//! A reference evaluator for S₀ — the semantics the back ends must
//! implement.
//!
//! This is a direct loop over the S₀ program (tail calls never grow the
//! host stack); the production executor with the C-translation's
//! register discipline and instruction counters lives in the `pe-vm`
//! crate, and the C back end in `pe-backend-c`.

use crate::s0::{S0Program, S0Simple, S0Tail};
use pe_intern::FxHashMap;
use pe_interp::value::{apply_prim, Value};
use pe_interp::{Datum, Fuel, InterpError, Limits};
use pe_frontend::Prim;
use std::rc::Rc;

/// A runtime closure: flat vector of label + captured values.
#[derive(Debug, Clone, PartialEq)]
pub struct S0Closure {
    /// The lambda label stored by `make-closure`.
    pub label: u32,
    /// The captured values.
    pub freevals: Rc<Vec<V>>,
}

type V = Value<S0Closure>;

/// The frame is the current procedure's parameter names (borrowed from
/// the program — never cloned per call) beside their values.
struct Frame<'p> {
    params: &'p [String],
    vals: Vec<V>,
}

fn eval_simple(s: &S0Simple, frame: &Frame<'_>, fuel: &mut Fuel) -> Result<V, InterpError> {
    match s {
        S0Simple::Var(v) => frame
            .params
            .iter()
            .rposition(|n| n == v)
            .and_then(|i| frame.vals.get(i).cloned())
            .ok_or_else(|| InterpError::Unbound(v.clone())),
        S0Simple::Const(k) => Ok(Value::from_constant(k)),
        S0Simple::Prim(op, args) => {
            let vals = args
                .iter()
                .map(|a| eval_simple(a, frame, fuel))
                .collect::<Result<Vec<_>, _>>()?;
            if matches!(op, Prim::Cons) {
                fuel.alloc(1)?;
            }
            Ok(apply_prim(*op, &vals)?)
        }
        S0Simple::MakeClosure(l, args) => {
            fuel.alloc(1)?;
            let vals = args
                .iter()
                .map(|a| eval_simple(a, frame, fuel))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::Closure(S0Closure { label: *l, freevals: Rc::new(vals) }))
        }
        S0Simple::ClosureLabel(a) => match eval_simple(a, frame, fuel)? {
            Value::Closure(c) => Ok(Value::Int(i64::from(c.label))),
            v => Err(InterpError::NotAProcedure(v.to_string())),
        },
        S0Simple::ClosureFreeval(a, i) => match eval_simple(a, frame, fuel)? {
            Value::Closure(c) => c
                .freevals
                .get(*i)
                .cloned()
                .ok_or_else(|| InterpError::Unbound(format!("freeval {i}"))),
            v => Err(InterpError::NotAProcedure(v.to_string())),
        },
    }
}

/// Runs the entry procedure of an S₀ program on first-order inputs.
///
/// # Errors
///
/// Returns an [`InterpError`] on dynamic faults, `%fail` forms, fuel
/// exhaustion or a closure-valued result.
pub fn run(
    p: &S0Program,
    args: &[Datum],
    limits: Limits,
) -> Result<Datum, InterpError> {
    run_with(p, args, limits, &mut pe_trace::NullSink)
}

/// Like [`run`], reporting step/alloc counters — and the governor
/// meter snapshot on a trap — to `sink`.
///
/// # Errors
///
/// As [`run`].
pub fn run_with(
    p: &S0Program,
    args: &[Datum],
    limits: Limits,
    sink: &mut dyn pe_trace::Sink,
) -> Result<Datum, InterpError> {
    let mut fuel = Fuel::new(&limits);
    let result = exec(p, args, &mut fuel);
    if sink.enabled() {
        sink.counter(pe_trace::Counter::EvalSteps, fuel.steps_used());
        sink.counter(pe_trace::Counter::EvalAllocs, fuel.cells_used());
        if result.is_err() {
            let snap = fuel.snapshot();
            pe_trace::trap_gauges(sink, snap.steps, snap.cells, snap.peak_depth as u64);
        }
    }
    result
}

fn exec(p: &S0Program, args: &[Datum], fuel: &mut Fuel) -> Result<Datum, InterpError> {
    let entry = p
        .proc(&p.entry)
        .ok_or_else(|| InterpError::NoSuchProc(p.entry.clone()))?;
    if entry.params.len() != args.len() {
        return Err(InterpError::EntryArity {
            name: p.entry.clone(),
            expected: entry.params.len(),
            got: args.len(),
        });
    }
    // Resolve callee names once up front: a tail call then costs one
    // hash lookup instead of a string-comparing scan over every proc,
    // and the frame borrows the callee's parameter names rather than
    // cloning them on each call.
    let index: FxHashMap<&str, &crate::s0::S0Proc> =
        p.procs.iter().map(|q| (q.name.as_str(), q)).collect();
    let mut frame = Frame {
        params: &entry.params,
        vals: args.iter().map(Datum::embed).collect(),
    };
    let mut body = &entry.body;
    // A flat loop (tail calls never recurse into the host stack), so
    // only the fuel and heap budgets apply here.
    loop {
        fuel.step()?;
        match body {
            S0Tail::Return(s) => {
                let v = eval_simple(s, &frame, fuel)?;
                return v.to_datum().ok_or(InterpError::ResultNotFirstOrder);
            }
            S0Tail::If(c, t, e) => {
                body = if eval_simple(c, &frame, fuel)?.is_truthy() { t } else { e };
            }
            S0Tail::TailCall(callee, cargs) => {
                let def = *index
                    .get(callee.as_str())
                    .ok_or_else(|| InterpError::NoSuchProc(callee.clone()))?;
                let vals = cargs
                    .iter()
                    .map(|a| eval_simple(a, &frame, fuel))
                    .collect::<Result<Vec<_>, _>>()?;
                frame = Frame { params: &def.params, vals };
                body = &def.body;
            }
            S0Tail::Fail(msg) => return Err(InterpError::NotAProcedure(msg.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s0::S0Proc;
    use pe_frontend::ast::Constant;
    use pe_frontend::Prim;

    #[test]
    fn closures_roundtrip_through_make_and_freeval() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec!["x".into()],
                body: S0Tail::Return(S0Simple::ClosureFreeval(
                    Box::new(S0Simple::MakeClosure(
                        7,
                        vec![
                            S0Simple::Const(Constant::Int(10)),
                            S0Simple::Var("x".into()),
                        ],
                    )),
                    1,
                )),
            }],
        };
        assert_eq!(run(&p, &[Datum::Int(42)], Limits::default()), Ok(Datum::Int(42)));
    }

    #[test]
    fn closure_label_reads_back() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec![],
                body: S0Tail::Return(S0Simple::ClosureLabel(Box::new(
                    S0Simple::MakeClosure(24, vec![]),
                ))),
            }],
        };
        assert_eq!(run(&p, &[], Limits::default()), Ok(Datum::Int(24)));
    }

    #[test]
    fn fail_faults() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec![],
                body: S0Tail::Fail("boom".into()),
            }],
        };
        assert!(matches!(
            run(&p, &[], Limits::default()),
            Err(InterpError::NotAProcedure(m)) if m == "boom"
        ));
    }

    #[test]
    fn tail_loop_is_flat() {
        let p = S0Program {
            entry: "loop".into(),
            procs: vec![S0Proc {
                name: "loop".into(),
                params: vec!["n".into()],
                body: S0Tail::If(
                    S0Simple::Prim(Prim::ZeroP, vec![S0Simple::Var("n".into())]),
                    Box::new(S0Tail::Return(S0Simple::Const(Constant::Int(0)))),
                    Box::new(S0Tail::TailCall(
                        "loop".into(),
                        vec![S0Simple::Prim(
                            Prim::Sub,
                            vec![S0Simple::Var("n".into()), S0Simple::Const(Constant::Int(1))],
                        )],
                    )),
                ),
            }],
        };
        assert_eq!(run(&p, &[Datum::Int(2_000_000)], Limits::default()), Ok(Datum::Int(0)));
    }
}
