//! The specializing compiler — the program transformer that the
//! specializer projections produce from the two-level interpreter of
//! Fig. 7.
//!
//! A *specialization state* is ⟨E, ρ, σ, τ⟩: a serious expression of the
//! desugared subject program, an environment binding variables to value
//! descriptions, a binding of configuration variables to residual
//! expressions, and a stack of pending evaluation contexts.  The engine
//! evaluates statically whatever the descriptions decide and emits
//! residual S₀ code for the rest:
//!
//! * **memoization** — procedure calls, dynamic-conditional branches and
//!   The-Trick dispatch arms are *specialization points*: states equal up
//!   to renaming of configuration variables share one residual procedure
//!   `sl-eval-$n(cv-vals-$1 …)`;
//! * **The Trick** (§4.2) — applying an unknown closure dispatches over
//!   the flow analysis' candidate lambdas, comparing `closure-label`s
//!   sequentially, so the interpreted expression becomes static again in
//!   every arm;
//! * **generalization** (§4.5) — self-embedding descriptions are lifted
//!   to configuration variables either at dynamic conditionals (online)
//!   or at creation (offline, driven by [`GenAnalysis`]); a critical
//!   context stack is split into a static prefix and a dynamic rest, the
//!   latter an ordinary runtime list of closures.

use crate::desc::{CvId, DescShape, MissingCv, ValDesc};
use crate::s0::{S0Proc, S0Program, S0Simple, S0Tail};
use pe_governor::Limits;
use pe_frontend::ast::{Constant, Prim};
use pe_frontend::dast::{DLabel, DProgram, LamId, SimpleExpr, TailExpr, VarId};
use pe_frontend::flow::{FlowAnalysis, LamSet};
use pe_frontend::gen_analysis::GenAnalysis;
use pe_intern::{FxHashMap, FxHashSet};
use pe_interp::Datum;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// When to generalize self-embedding data (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenStrategy {
    /// Delay until a dynamic conditional, then scan ρ and τ (less
    /// conservative; residual code unrolls loops at least once).
    Online,
    /// Generalize critical lambdas/cons sites at creation, guided by the
    /// offline [`GenAnalysis`].
    Offline,
}

/// Compiler configuration.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Generalization strategy.
    pub strategy: GenStrategy,
    /// Run the residual post-processor (transition compression,
    /// inline-once, dead parameter elimination).
    pub postprocess: bool,
    /// Run the flow optimizer (copy/constant propagation, dead-binding
    /// elimination, closure-slot pruning, dispatch-arm folding) over
    /// the residual program.
    pub flow: bool,
    /// Restrict The Trick's dispatch candidates with the flow analysis;
    /// `false` dispatches over every context lambda (the ablation).
    pub trick_flow: bool,
    /// Shared resource limits: `max_residual` bounds the residual
    /// procedure count and `max_unfold_depth` the static unfolding depth
    /// within one residual body.
    pub limits: Limits,
    /// Descriptions larger than this are generalized (safety valve, far
    /// beyond anything the benchmark suite produces).
    pub max_desc_size: usize,
    /// Bounded-static-variation widening: when one variable slot of one
    /// specialization point has been seen with more than this many
    /// distinct fully static values, the slot is generalized from then
    /// on.  Catches static data that *grows* under dynamic control
    /// (e.g. a counter incremented around a dynamic loop), which the
    /// §4.5 self-embedding test cannot see because base values have no
    /// creation sites.  Static unfolding below the threshold (the
    /// specializer projections' use case) is unaffected.
    pub widen_threshold: usize,
    /// Run the size-change termination analysis (`pe-sct`) before
    /// specializing: provably-divergent programs are refused with
    /// [`SpecError::SctDiverges`] before any fuel is spent, slots with
    /// provable structural descent skip variety tracking, and slots
    /// with provable in-situ growth are generalized eagerly instead of
    /// discovered at the widening cap.
    pub sct: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            strategy: GenStrategy::Offline,
            postprocess: true,
            flow: true,
            trick_flow: true,
            limits: Limits::default(),
            max_desc_size: 512,
            widen_threshold: 40,
            sct: true,
        }
    }
}

/// An error produced during specialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The entry procedure does not exist.
    NoSuchProc(String),
    /// Wrong number of static/dynamic argument slots for the entry.
    EntryArity { name: String, expected: usize, got: usize },
    /// The residual program exceeded `limits.max_residual`
    /// (specialization of a program that diverges on its static data).
    Budget { procs: usize },
    /// Static unfolding exceeded `limits.max_unfold_depth` (e.g. the Ω
    /// combinator, which also loops the paper's interpreter).
    DepthExceeded,
    /// Internal: a variable had no description (unreachable from the
    /// public API).
    UnboundVar(String),
    /// Internal: a specializer invariant failed — reported instead of
    /// panicking so embedders never lose their thread.
    Internal(String),
    /// The size-change termination analysis proved the program diverges
    /// on every input ([`CompileOptions::sct`]); specialization was
    /// refused before burning any fuel.  The trap is always
    /// [`pe_governor::Trap::StaticDivergence`].
    SctDiverges(pe_governor::Trap),
}

impl SpecError {
    /// True when specialization was stopped by a resource budget rather
    /// than a genuine error in the subject program.  Callers can fall
    /// back to interpreted execution in this case (the subject program
    /// may still terminate at run time even though specializing it does
    /// not).
    #[must_use]
    pub fn is_budget_exhaustion(&self) -> bool {
        matches!(self, SpecError::Budget { .. } | SpecError::DepthExceeded)
    }

    /// True when a caller with a runtime fallback should still try
    /// executing the subject program directly: budget exhaustion (the
    /// program may terminate at run time even though specializing it
    /// does not), and static-divergence rejects (the interpreter's own
    /// fuel then bounds the doomed run).
    #[must_use]
    pub fn is_degradable(&self) -> bool {
        self.is_budget_exhaustion() || matches!(self, SpecError::SctDiverges(_))
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoSuchProc(n) => write!(f, "no such procedure: {n}"),
            SpecError::EntryArity { name, expected, got } => {
                write!(f, "entry {name} expects {expected} argument slot(s), got {got}")
            }
            SpecError::Budget { procs } => {
                write!(f, "specialization exceeded the budget of {procs} residual procedures")
            }
            SpecError::DepthExceeded => write!(f, "static unfolding depth exceeded"),
            SpecError::UnboundVar(v) => write!(f, "internal: unbound {v}"),
            SpecError::Internal(m) => write!(f, "internal: {m}"),
            SpecError::SctDiverges(t) => {
                write!(f, "rejected by termination analysis: {t}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<MissingCv> for SpecError {
    fn from(e: MissingCv) -> Self {
        SpecError::Internal(e.to_string())
    }
}

/// The environment ρ: variables → value descriptions.
type Env = BTreeMap<VarId, ValDesc>;

/// σ: configuration variables → residual expressions.  Looked up on
/// every residualization, so the DoS-resistant default hasher is traded
/// for the Fx hash ([`pe_intern`] module docs explain why that is safe).
type Sigma = FxHashMap<CvId, S0Simple>;

/// The context stack τ, split into a static prefix (top at the end) and
/// an optional dynamic rest — a runtime list of closures, car = top.
#[derive(Debug, Clone, Default)]
struct CtxStack {
    prefix: Vec<ValDesc>,
    /// Always a `ValDesc::Cv` when present.
    dyn_rest: Option<ValDesc>,
}

/// Memoization key: a specialization state up to renaming of
/// configuration variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    label: DLabel,
    env: Vec<(VarId, DescShape)>,
    prefix: Vec<DescShape>,
    dyn_rest: Option<DescShape>,
}

struct PendingProc<'p> {
    name: String,
    params: Vec<String>,
    te: &'p TailExpr,
    env: Env,
    tau: CtxStack,
    sigma: Sigma,
}

/// A restorable image of the specializer's memo state, captured after a
/// successful compile with [`Spec::compile_snapshot_with`] and restored
/// into a fresh engine with [`Spec::with_snapshot`].
///
/// The snapshot turns the memo table from a per-compile scratchpad into
/// reusable service state: recompiling the **same entry** over the same
/// program replays entirely from the table (one memo hit, zero pending
/// work, byte-identical raw residual), and compiling a **different
/// entry** of the same program starts from every specialization point
/// the earlier run already produced, re-emitting its procedures instead
/// of re-specializing them.
///
/// Soundness rests on the memo keys: they name `DLabel`s and `VarId`s
/// of one desugared program, so a snapshot may only ever be restored
/// into a [`Spec`] over a [`DProgram`] desugared from *identical*
/// source with compatible options.  Callers (the pe-serve warm-start
/// index) enforce that with a content fingerprint; restoring a
/// snapshot across different programs is a logic error that this type
/// cannot detect.
#[derive(Debug, Clone, Default)]
pub struct MemoSnapshot {
    memo: FxHashMap<Key, String>,
    /// Residual procedures emitted for the memoized points (everything
    /// except the entry wrapper), in emission order.
    procs: Vec<S0Proc>,
    next_cv: CvId,
    next_proc: u32,
    static_variety: FxHashMap<(DLabel, VarId), FxHashSet<Constant>>,
    widened: FxHashSet<(DLabel, VarId)>,
    prefix_variety: FxHashMap<DLabel, FxHashSet<Vec<DescShape>>>,
    widened_prefix: FxHashSet<DLabel>,
}

impl MemoSnapshot {
    /// Memoized specialization points in the snapshot.
    #[must_use]
    pub fn points(&self) -> usize {
        self.memo.len()
    }

    /// Residual procedures carried by the snapshot.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs.len()
    }

    /// True when the snapshot carries no reusable state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty() && self.procs.is_empty()
    }
}

/// Event totals from one specialization run.
///
/// The specializer bumps plain integers on its hot paths and flushes
/// them to a [`pe_trace::Sink`] once at the end of the run, so tracing
/// costs nothing per event — and the totals survive budget errors,
/// which is exactly when they are most interesting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpecCounters {
    /// Specialization-point memo lookups.
    pub memo_lookups: u64,
    /// Lookups answered from the memo table.
    pub memo_hits: u64,
    /// Lookups that created a new residual procedure.
    pub memo_misses: u64,
    /// `spec_tail` unfolding steps.
    pub unfold_steps: u64,
    /// Generalization firings (§4.5).
    pub generalizations: u64,
    /// Widening firings *discovered dynamically*: bounded-static-
    /// variation caps, prefix caps, and context-stack flushes at points
    /// the termination analysis did not flag.
    pub widenings: u64,
    /// Generalizations performed because the termination analysis
    /// pre-annotated the point: unbounded slots generalized on sight
    /// and stack flushes at statically anticipated labels.  With
    /// [`CompileOptions::sct`] off this is always zero — the same
    /// events then surface as `widenings`.
    pub eager_generalizations: u64,
    /// The-Trick dispatch expansions.
    pub trick_dispatches: u64,
    /// Total arms across all Trick dispatches.
    pub trick_arms: u64,
}

impl SpecCounters {
    /// Emits every non-zero total to `sink`.
    pub fn flush(&self, sink: &mut dyn pe_trace::Sink) {
        if !sink.enabled() {
            return;
        }
        use pe_trace::Counter;
        sink.counter(Counter::MemoLookups, self.memo_lookups);
        sink.counter(Counter::MemoHits, self.memo_hits);
        sink.counter(Counter::MemoMisses, self.memo_misses);
        sink.counter(Counter::UnfoldSteps, self.unfold_steps);
        sink.counter(Counter::Generalizations, self.generalizations);
        sink.counter(Counter::Widenings, self.widenings);
        sink.counter(Counter::EagerGeneralizations, self.eager_generalizations);
        sink.counter(Counter::TrickDispatches, self.trick_dispatches);
        sink.counter(Counter::TrickArms, self.trick_arms);
    }
}

/// What the dynamic control machinery did at one specialization point.
/// The ordered log of these is the audit trail that pass 7 of
/// `pe-verify` checks against the SCT verdict tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// A bounded-static-variation slot cap fired — a dynamic discovery.
    SlotWiden,
    /// The context-prefix shape cap fired — a dynamic discovery.
    PrefixWiden,
    /// The context stack was flushed to its dynamic representation at a
    /// point the termination analysis had not flagged.
    StackFlush,
    /// A slot the termination analysis flagged unbounded was
    /// generalized on sight instead of tracked to the cap.
    SlotEager,
    /// A stack flush at a label the analysis marked as stack-growing:
    /// statically anticipated, not discovered.
    StackEager,
}

/// One entry of the specialization control log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlEvent {
    /// The `DLabel` of the subject-program point.
    pub label: u32,
    /// What happened there.
    pub kind: ControlKind,
    /// Source name of the variable, for slot events.
    pub var: Option<String>,
}

/// The specializer engine.
pub struct Spec<'p> {
    dp: &'p DProgram,
    flow: &'p FlowAnalysis,
    gen: &'p GenAnalysis,
    opts: CompileOptions,
    memo: FxHashMap<Key, String>,
    pending: VecDeque<PendingProc<'p>>,
    done: Vec<S0Proc>,
    next_cv: CvId,
    next_proc: u32,
    /// Bounded-static-variation tracking: distinct fully static values
    /// seen per (point, variable), and slots already widened.
    static_variety: FxHashMap<(DLabel, VarId), FxHashSet<Constant>>,
    widened: FxHashSet<(DLabel, VarId)>,
    /// The same widening for the static context-stack prefix: distinct
    /// prefix shapes seen per point; a point that shows too many flushes
    /// its stack to the dynamic representation from then on.  Keyed by
    /// the structural shape vector itself — the previous implementation
    /// rendered a `format!("{:?}")` string per visit, allocating and
    /// hashing a long string at every specialization point.
    prefix_variety: FxHashMap<DLabel, FxHashSet<Vec<DescShape>>>,
    widened_prefix: FxHashSet<DLabel>,
    counters: SpecCounters,
    /// SCT verdict tables ([`Spec::with_sct`]): exempt slots skip
    /// variety tracking, unbounded slots generalize on sight, and stack
    /// flushes at annotated labels count as anticipated rather than
    /// discovered.
    sct: Option<pe_sct::Verdicts>,
    /// The control log — what widened or generalized, where.
    events: Vec<ControlEvent>,
    /// Per-residual-procedure cost rows `(name, ns, nodes)`, recorded
    /// as each procedure's body is produced and flushed as
    /// `Event::Attr` rows by the audited entry points.  Two clock
    /// reads per residual procedure — noise next to specializing one.
    attrs: Vec<(String, u64, u64)>,
}

impl<'p> Spec<'p> {
    /// Creates an engine over an analyzed program.
    pub fn new(
        dp: &'p DProgram,
        flow: &'p FlowAnalysis,
        gen: &'p GenAnalysis,
        opts: CompileOptions,
    ) -> Spec<'p> {
        Spec {
            dp,
            flow,
            gen,
            opts,
            memo: FxHashMap::default(),
            pending: VecDeque::new(),
            done: Vec::new(),
            next_cv: 0,
            next_proc: 0,
            static_variety: FxHashMap::default(),
            widened: FxHashSet::default(),
            prefix_variety: FxHashMap::default(),
            widened_prefix: FxHashSet::default(),
            counters: SpecCounters::default(),
            sct: None,
            events: Vec::new(),
            attrs: Vec::new(),
        }
    }

    /// Installs the size-change termination verdict tables (produced by
    /// `pe_sct::analyze` over the same program).  Without this the
    /// engine runs on purely dynamic control, as before the analysis
    /// existed.
    #[must_use]
    pub fn with_sct(mut self, verdicts: pe_sct::Verdicts) -> Spec<'p> {
        self.sct = Some(verdicts);
        self
    }

    /// Restores a [`MemoSnapshot`] captured from an earlier run over the
    /// *same* desugared program with the same options: the memo table,
    /// its residual procedures, the id counters, and the widening state
    /// all resume where that run left them.  A warm run that revisits a
    /// memoized point emits a call to the already-specialized procedure
    /// instead of specializing again.
    #[must_use]
    pub fn with_snapshot(mut self, snap: &MemoSnapshot) -> Spec<'p> {
        self.memo = snap.memo.clone();
        self.done = snap.procs.clone();
        self.next_cv = snap.next_cv;
        self.next_proc = snap.next_proc;
        self.static_variety = snap.static_variety.clone();
        self.widened = snap.widened.clone();
        self.prefix_variety = snap.prefix_variety.clone();
        self.widened_prefix = snap.widened_prefix.clone();
        self
    }

    fn fresh_cv(&mut self) -> CvId {
        let id = self.next_cv;
        self.next_cv += 1;
        id
    }

    /// Compiles `entry` with every parameter dynamic (the paper's main
    /// mode: closure conversion + tail conversion + constant folding).
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn compile(self, entry: &str) -> Result<S0Program, SpecError> {
        self.compile_with(entry, &mut pe_trace::NullSink)
    }

    /// Like [`Spec::compile`], flushing the run's [`SpecCounters`] to
    /// `sink` — on success *and* on budget errors, where the totals
    /// explain what blew up.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn compile_with(
        self,
        entry: &str,
        sink: &mut dyn pe_trace::Sink,
    ) -> Result<S0Program, SpecError> {
        self.compile_audited_with(entry, sink).map(|(p, _)| p)
    }

    /// Like [`Spec::compile_with`], additionally returning the control
    /// log — the per-point record of widenings and eager
    /// generalizations that pass 7 of `pe-verify` audits against the
    /// SCT verdicts.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn compile_audited_with(
        mut self,
        entry: &str,
        sink: &mut dyn pe_trace::Sink,
    ) -> Result<(S0Program, Vec<ControlEvent>), SpecError> {
        let r = self.compile_inner(entry);
        self.counters.flush(sink);
        self.flush_attrs(sink);
        r.map(|p| (p, self.events))
    }

    /// Like [`Spec::compile_audited_with`], additionally capturing a
    /// [`MemoSnapshot`] of the finished memo table for warm-starting a
    /// later compile of the same program.  The snapshot holds the *raw*
    /// residual procedures (pre-postprocess), because the memo names
    /// refer to them.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    #[allow(clippy::type_complexity)]
    pub fn compile_snapshot_with(
        mut self,
        entry: &str,
        sink: &mut dyn pe_trace::Sink,
    ) -> Result<(S0Program, Vec<ControlEvent>, MemoSnapshot), SpecError> {
        let r = self.compile_inner(entry);
        self.counters.flush(sink);
        self.flush_attrs(sink);
        let p = r?;
        let snap = MemoSnapshot {
            memo: std::mem::take(&mut self.memo),
            // Everything but the entry wrapper: those are the procedures
            // the memo table's values name.
            procs: p.procs[1..].to_vec(),
            next_cv: self.next_cv,
            next_proc: self.next_proc,
            static_variety: std::mem::take(&mut self.static_variety),
            widened: std::mem::take(&mut self.widened),
            prefix_variety: std::mem::take(&mut self.prefix_variety),
            widened_prefix: std::mem::take(&mut self.widened_prefix),
        };
        Ok((p, self.events, snap))
    }

    fn compile_inner(&mut self, entry: &str) -> Result<S0Program, SpecError> {
        let slots: Vec<Option<Datum>> = {
            let pid = self
                .dp
                .proc_id(entry)
                .ok_or_else(|| SpecError::NoSuchProc(entry.to_string()))?;
            vec![None; self.dp.proc(pid).params.len()]
        };
        self.run(entry, &slots, entry.to_string())
    }

    /// Specializes `entry` with respect to known (static) arguments —
    /// the first specializer projection.  `slots[i] = Some(v)` makes the
    /// i-th parameter static with value `v`; `None` keeps it dynamic and
    /// a parameter of the residual entry `entry-$1`.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn specialize(
        self,
        entry: &str,
        slots: &[Option<Datum>],
    ) -> Result<S0Program, SpecError> {
        self.specialize_with(entry, slots, &mut pe_trace::NullSink)
    }

    /// Like [`Spec::specialize`], flushing the run's [`SpecCounters`]
    /// to `sink` even when specialization fails.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn specialize_with(
        self,
        entry: &str,
        slots: &[Option<Datum>],
        sink: &mut dyn pe_trace::Sink,
    ) -> Result<S0Program, SpecError> {
        self.specialize_audited_with(entry, slots, sink).map(|(p, _)| p)
    }

    /// Like [`Spec::specialize_with`], additionally returning the
    /// control log (see [`Spec::compile_audited_with`]).
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn specialize_audited_with(
        mut self,
        entry: &str,
        slots: &[Option<Datum>],
        sink: &mut dyn pe_trace::Sink,
    ) -> Result<(S0Program, Vec<ControlEvent>), SpecError> {
        let name = format!("{entry}-$1");
        let r = self.run(entry, slots, name);
        self.counters.flush(sink);
        self.flush_attrs(sink);
        r.map(|p| (p, self.events))
    }

    fn run(
        &mut self,
        entry: &str,
        slots: &[Option<Datum>],
        residual_name: String,
    ) -> Result<S0Program, SpecError> {
        let pid = self
            .dp
            .proc_id(entry)
            .ok_or_else(|| SpecError::NoSuchProc(entry.to_string()))?;
        let def = self.dp.proc(pid);
        if def.params.len() != slots.len() {
            return Err(SpecError::EntryArity {
                name: entry.to_string(),
                expected: def.params.len(),
                got: slots.len(),
            });
        }
        let mut env = Env::new();
        let mut sigma = Sigma::default();
        let mut params = Vec::new();
        for (&param, slot) in def.params.iter().zip(slots) {
            match slot {
                Some(v) => {
                    env.insert(param, ValDesc::Quote(datum_to_constant(v)));
                }
                None => {
                    let cv = self.fresh_cv();
                    let name = unique_param_name(&self.dp.var_names[param.0 as usize], &params);
                    sigma.insert(cv, S0Simple::Var(name.clone()));
                    params.push(name);
                    env.insert(
                        param,
                        ValDesc::Cv { id: cv, cands: self.flow.var_lambdas(param) },
                    );
                }
            }
        }
        // Going through spec_point registers the entry state in the memo
        // table, so a self-recursive entry reuses one residual procedure
        // (post-processing then merges the trampoline away).
        let t0 = std::time::Instant::now();
        let body =
            self.spec_point(&def.body, &env, &CtxStack::default(), &mut sigma)?;
        let entry_proc = S0Proc { name: residual_name.clone(), params, body };
        self.attrs.push((
            residual_name.clone(),
            elapsed_ns(t0),
            entry_proc.size() as u64,
        ));
        let mut procs = vec![entry_proc];
        while let Some(p) = self.pending.pop_front() {
            if procs.len() + self.done.len() >= self.opts.limits.max_residual {
                return Err(SpecError::Budget { procs: self.opts.limits.max_residual });
            }
            let t0 = std::time::Instant::now();
            let mut sigma = p.sigma;
            let body = self.spec_tail(p.te, p.env, p.tau, &mut sigma, 0)?;
            let proc = S0Proc { name: p.name, params: p.params, body };
            self.attrs.push((proc.name.clone(), elapsed_ns(t0), proc.size() as u64));
            self.done.push(proc);
        }
        procs.append(&mut self.done);
        Ok(S0Program { procs, entry: residual_name })
    }

    /// Emits the per-residual-procedure cost rows recorded by
    /// [`Spec::run`] — one `Event::Attr` per procedure specialized
    /// *this* run (snapshot-restored procedures cost nothing here).
    fn flush_attrs(&self, sink: &mut dyn pe_trace::Sink) {
        if !sink.enabled() {
            return;
        }
        for (name, ns, nodes) in &self.attrs {
            sink.attr(pe_trace::Phase::Specialize, name, *ns, *nodes);
        }
    }

    // ------------------------------------------------------------------
    // E⋆ — serious expressions
    // ------------------------------------------------------------------

    fn spec_tail(
        &mut self,
        te: &'p TailExpr,
        mut env: Env,
        mut tau: CtxStack,
        sigma: &mut Sigma,
        depth: usize,
    ) -> Result<S0Tail, SpecError> {
        if depth > self.opts.limits.max_unfold_depth {
            return Err(SpecError::DepthExceeded);
        }
        self.counters.unfold_steps += 1;
        match te {
            TailExpr::Simple(se) => {
                let d = self.spec_simple(se, &env, sigma)?;
                self.apply_ctx(d, tau, sigma, depth)
            }
            TailExpr::If(l, c, t, e) => {
                let d = self.spec_simple(c, &env, sigma)?;
                match d.truthiness() {
                    Some(true) => self.spec_tail(t, env, tau, sigma, depth + 1),
                    Some(false) => self.spec_tail(e, env, tau, sigma, depth + 1),
                    None => {
                        // The online strategy's moment: scan ρ and τ for
                        // critical data before residualizing the
                        // conditional.  (Run in both modes; offline has
                        // already generalized at creation, so this is a
                        // cheap no-op backstop there.)
                        self.generalize_state(&mut env, &mut tau, sigma, l.0)?;
                        let cond = d.residualize(sigma)?;
                        let tcall = self.spec_point(t, &env, &tau, sigma)?;
                        let ecall = self.spec_point(e, &env, &tau, sigma)?;
                        Ok(S0Tail::If(cond, Box::new(tcall), Box::new(ecall)))
                    }
                }
            }
            TailExpr::CallProc(_, pid, args) => {
                let def = self.dp.proc(*pid);
                let mut callee = Env::new();
                for (&param, arg) in def.params.iter().zip(args) {
                    let d = self.spec_simple(arg, &env, sigma)?;
                    callee.insert(param, d);
                }
                Ok(self.spec_point(&def.body, &callee, &tau, sigma)?)
            }
            TailExpr::PushApp(l, ctx, body) => {
                let d = self.spec_simple(ctx, &env, sigma)?;
                // Offline stack rule: pushing a context that may be a
                // stack-critical lambda flushes τ to a dynamic list.
                let critical = self.opts.strategy == GenStrategy::Offline
                    && !d.is_fully_static()
                    && d.closure_candidates()
                        .iter()
                        .any(|l| self.gen.lam_is_critical(l));
                tau.prefix.push(d);
                if critical {
                    self.flush_stack(&mut tau, sigma, l.0)?;
                }
                self.spec_tail(body, env, tau, sigma, depth + 1)
            }
        }
    }

    // ------------------------------------------------------------------
    // C — context application
    // ------------------------------------------------------------------

    fn apply_ctx(
        &mut self,
        value: ValDesc,
        mut tau: CtxStack,
        sigma: &mut Sigma,
        depth: usize,
    ) -> Result<S0Tail, SpecError> {
        if depth > self.opts.limits.max_unfold_depth {
            return Err(SpecError::DepthExceeded);
        }
        if let Some(ctx) = tau.prefix.pop() {
            return match ctx {
                ValDesc::Clos { lam, freevals } => {
                    let def = self.dp.lambda(lam);
                    let mut env = Env::new();
                    env.insert(def.param, value);
                    for (&fv, d) in def.freevars.iter().zip(freevals) {
                        env.insert(fv, d);
                    }
                    self.spec_tail(&def.body, env, tau, sigma, depth + 1)
                }
                ValDesc::Cv { id, cands } => {
                    let ctx_expr = sigma.get(&id).cloned().ok_or(MissingCv(id))?;
                    self.trick_dispatch(ctx_expr, &cands, value, tau, sigma)
                }
                ValDesc::Quote(_) | ValDesc::Cons { .. } => {
                    Ok(S0Tail::Fail("application of a non-procedure".to_string()))
                }
            };
        }
        if let Some(ValDesc::Cv { id, cands }) = tau.dyn_rest.clone() {
            // Pop from the dynamic context stack: an ordinary list.
            let stack_expr = sigma.get(&id).cloned().ok_or(MissingCv(id))?;
            let ctx_cv = self.fresh_cv();
            sigma.insert(ctx_cv, S0Simple::Prim(Prim::Car, vec![stack_expr.clone()]));
            let rest_cv = self.fresh_cv();
            sigma.insert(rest_cv, S0Simple::Prim(Prim::Cdr, vec![stack_expr.clone()]));
            let tau2 = CtxStack {
                prefix: Vec::new(),
                dyn_rest: Some(ValDesc::Cv { id: rest_cv, cands: cands.clone() }),
            };
            let ctx_expr = sigma[&ctx_cv].clone();
            let dispatch = self.trick_dispatch(ctx_expr, &cands, value.clone(), tau2, sigma)?;
            return Ok(S0Tail::If(
                S0Simple::Prim(Prim::NullP, vec![stack_expr]),
                Box::new(S0Tail::Return(value.residualize(sigma)?)),
                Box::new(dispatch),
            ));
        }
        Ok(S0Tail::Return(value.residualize(sigma)?))
    }

    /// The Trick: a sequential dispatch over candidate lambdas,
    /// comparing `closure-label`s, each arm continuing with the now
    /// static lambda body (a memoized specialization point).
    fn trick_dispatch(
        &mut self,
        ctx_expr: S0Simple,
        cands: &LamSet,
        value: ValDesc,
        tau: CtxStack,
        sigma: &mut Sigma,
    ) -> Result<S0Tail, SpecError> {
        let list: Vec<LamId> = cands.iter().collect();
        if list.is_empty() {
            return Ok(S0Tail::Fail("application of a non-procedure".to_string()));
        }
        self.counters.trick_dispatches += 1;
        self.counters.trick_arms += list.len() as u64;
        let mut out: Option<S0Tail> = None;
        // Build from the last candidate backwards; the final candidate
        // needs no test (sequential dispatch, as in the paper's output).
        for (i, &lam) in list.iter().enumerate().rev() {
            let arm = self.trick_arm(lam, &ctx_expr, value.clone(), tau.clone(), sigma)?;
            out = Some(match out {
                None => arm,
                Some(rest) => S0Tail::If(
                    S0Simple::Prim(
                        Prim::EqualP,
                        vec![
                            S0Simple::Const(Constant::Int(i64::from(lam.0))),
                            S0Simple::ClosureLabel(Box::new(ctx_expr.clone())),
                        ],
                    ),
                    Box::new(arm),
                    Box::new(rest),
                ),
            });
            let _ = i;
        }
        // `list` is non-empty (checked above), so the fold produced an arm.
        out.ok_or_else(|| SpecError::Internal("empty dispatch chain".to_string()))
    }

    fn trick_arm(
        &mut self,
        lam: LamId,
        ctx_expr: &S0Simple,
        value: ValDesc,
        tau: CtxStack,
        sigma: &mut Sigma,
    ) -> Result<S0Tail, SpecError> {
        // A dynamic dispatch is dynamic control: a value flowing through
        // it could enumerate every value the program can compute (list
        // shapes via cons, counters via folded arithmetic), so it is
        // generalized here — the arm's memo key must stay finite.  A
        // constant still appears literally in the residual call's
        // argument, so no code quality is lost; static data keeps
        // propagating through procedure calls and *static* context
        // applications, which is where the specializer projections act.
        let value = match &value {
            ValDesc::Cv { .. } => value,
            _ => self.generalize(value, sigma)?,
        };
        let def = self.dp.lambda(lam);
        let mut env = Env::new();
        env.insert(def.param, value);
        for (i, &fv) in def.freevars.iter().enumerate() {
            let cv = self.fresh_cv();
            sigma.insert(
                cv,
                S0Simple::ClosureFreeval(Box::new(ctx_expr.clone()), i),
            );
            env.insert(fv, ValDesc::Cv { id: cv, cands: self.fv_cands(fv) });
        }
        self.spec_point(&def.body, &env, &tau, sigma)
    }

    fn fv_cands(&self, v: VarId) -> LamSet {
        if self.opts.trick_flow {
            self.flow.var_lambdas(v)
        } else {
            self.all_lams()
        }
    }

    fn all_lams(&self) -> LamSet {
        (0..self.dp.lambdas.len() as u32).map(LamId).collect()
    }

    // ------------------------------------------------------------------
    // Specialization points (memoization)
    // ------------------------------------------------------------------

    fn spec_point(
        &mut self,
        te: &'p TailExpr,
        env: &Env,
        tau: &CtxStack,
        sigma: &mut Sigma,
    ) -> Result<S0Tail, SpecError> {
        // Bounded-static-variation widening for the context stack: a
        // specialization point whose static prefix keeps changing shape
        // (distinct context combinations under dynamic control) switches
        // to the dynamic stack representation — the prefix contents
        // still appear, as residual make-closure/cons code.
        let mut tau = tau.clone();
        {
            let label = te.label();
            if self.widened_prefix.contains(&label) {
                self.flush_stack(&mut tau, sigma, label.0)?;
            } else if !tau.prefix.is_empty() {
                let mut idx: FxHashMap<CvId, u32> = FxHashMap::default();
                let mut next = 0u32;
                let mut cvs = Vec::new();
                for d in &tau.prefix {
                    d.collect_cvs(&mut cvs);
                }
                for cv in cvs {
                    idx.entry(cv).or_insert_with(|| {
                        next += 1;
                        next - 1
                    });
                }
                let shape: Vec<DescShape> = tau.prefix.iter().map(|d| d.shape(&idx)).collect();
                let seen = self.prefix_variety.entry(label).or_default();
                seen.insert(shape);
                if seen.len() > self.opts.widen_threshold {
                    self.widened_prefix.insert(label);
                    self.counters.widenings += 1;
                    self.events.push(ControlEvent {
                        label: label.0,
                        kind: ControlKind::PrefixWiden,
                        var: None,
                    });
                    self.flush_stack(&mut tau, sigma, label.0)?;
                }
            }
        }
        let tau = &tau;
        // Restrict ρ to the free variables of the target expression.
        let mut live = BTreeSet::new();
        pe_frontend::dast::free_tail(self.dp, te, &mut live);
        let mut env_live: Vec<(VarId, ValDesc)> = env
            .iter()
            .filter(|(v, _)| live.contains(v))
            .map(|(v, d)| (*v, d.clone()))
            .collect();
        // Bounded-static-variation widening (see CompileOptions),
        // short-circuited in both directions by the SCT verdict tables:
        // slots with provable structural descent need no variety
        // tracking at all, and slots with provable in-situ growth are
        // generalized on first sight instead of at the cap.
        let label = te.label();
        for (v, d) in &mut env_live {
            let slot = (label, *v);
            if self.widened.contains(&slot) {
                if !matches!(d, ValDesc::Cv { .. }) {
                    *d = self.generalize(d.clone(), sigma)?;
                }
                continue;
            }
            if self.sct.as_ref().is_some_and(|s| s.exempt_vars.contains(v)) {
                continue;
            }
            if self.sct.as_ref().is_some_and(|s| s.eager_vars.contains(v)) {
                if d.as_constant().is_some() {
                    self.widened.insert(slot);
                    self.counters.eager_generalizations += 1;
                    self.events.push(ControlEvent {
                        label: label.0,
                        kind: ControlKind::SlotEager,
                        var: Some(self.dp.var_name(*v)),
                    });
                    *d = self.generalize(d.clone(), sigma)?;
                }
                continue;
            }
            if let Some(k) = d.as_constant() {
                let seen = self.static_variety.entry(slot).or_default();
                seen.insert(k);
                if seen.len() > self.opts.widen_threshold {
                    self.widened.insert(slot);
                    self.counters.widenings += 1;
                    self.events.push(ControlEvent {
                        label: label.0,
                        kind: ControlKind::SlotWiden,
                        var: Some(self.dp.var_name(*v)),
                    });
                    *d = self.generalize(d.clone(), sigma)?;
                }
            }
        }

        // Canonical numbering of configuration variables by first
        // occurrence across ρ (in VarId order), then τ.
        let mut order: Vec<CvId> = Vec::new();
        for (_, d) in &env_live {
            d.collect_cvs(&mut order);
        }
        for d in &tau.prefix {
            d.collect_cvs(&mut order);
        }
        if let Some(d) = &tau.dyn_rest {
            d.collect_cvs(&mut order);
        }
        let index: FxHashMap<CvId, u32> =
            order.iter().enumerate().map(|(i, &cv)| (cv, i as u32)).collect();
        let key = Key {
            label,
            env: env_live.iter().map(|(v, d)| (*v, d.shape(&index))).collect(),
            prefix: tau.prefix.iter().map(|d| d.shape(&index)).collect(),
            dyn_rest: tau.dyn_rest.as_ref().map(|d| d.shape(&index)),
        };
        let args: Vec<S0Simple> = order
            .iter()
            .map(|cv| sigma.get(cv).cloned().ok_or(MissingCv(*cv)))
            .collect::<Result<_, _>>()?;
        self.counters.memo_lookups += 1;
        if let Some(name) = self.memo.get(&key) {
            self.counters.memo_hits += 1;
            return Ok(S0Tail::TailCall(name.clone(), args));
        }
        self.counters.memo_misses += 1;
        self.next_proc += 1;
        let name = format!("sl-eval-${}", self.next_proc);
        if std::env::var("PE_SPEC_DEBUG").is_ok() {
            eprintln!("[spec] {name} label={:?} params={} key={:?}", key.label, order.len(), key);
        }
        self.memo.insert(key, name.clone());
        if self.memo.len() > self.opts.limits.max_residual {
            return Err(SpecError::Budget { procs: self.opts.limits.max_residual });
        }

        // Rename the state's cvs to fresh ones bound to the residual
        // procedure's parameters.
        let mut rename: FxHashMap<CvId, CvId> = FxHashMap::default();
        let mut new_sigma = Sigma::default();
        let mut params = Vec::new();
        for (i, &old) in order.iter().enumerate() {
            let fresh = self.fresh_cv();
            rename.insert(old, fresh);
            let pname = format!("cv-vals-${}", i + 1);
            new_sigma.insert(fresh, S0Simple::Var(pname.clone()));
            params.push(pname);
        }
        let new_env: Env = env_live
            .iter()
            .map(|(v, d)| Ok((*v, d.rename_cvs(&rename)?)))
            .collect::<Result<_, MissingCv>>()?;
        let new_tau = CtxStack {
            prefix: tau
                .prefix
                .iter()
                .map(|d| d.rename_cvs(&rename))
                .collect::<Result<_, _>>()?,
            dyn_rest: tau.dyn_rest.as_ref().map(|d| d.rename_cvs(&rename)).transpose()?,
        };
        self.pending.push_back(PendingProc {
            name: name.clone(),
            params,
            te,
            env: new_env,
            tau: new_tau,
            sigma: new_sigma,
        });
        Ok(S0Tail::TailCall(name, args))
    }

    // ------------------------------------------------------------------
    // S⋆ — simple expressions over descriptions
    // ------------------------------------------------------------------

    fn spec_simple(
        &mut self,
        se: &SimpleExpr,
        env: &Env,
        sigma: &mut Sigma,
    ) -> Result<ValDesc, SpecError> {
        match se {
            SimpleExpr::Var(_, v) => env
                .get(v)
                .cloned()
                .ok_or_else(|| SpecError::UnboundVar(self.dp.var_name(*v))),
            SimpleExpr::Const(_, k) => Ok(ValDesc::Quote(k.clone())),
            SimpleExpr::Lambda(_, id) => {
                let def = self.dp.lambda(*id);
                let freevals = def
                    .freevars
                    .iter()
                    .map(|fv| {
                        env.get(fv)
                            .cloned()
                            .ok_or_else(|| SpecError::UnboundVar(self.dp.var_name(*fv)))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let d = ValDesc::Clos { lam: *id, freevals };
                // Fully static closures cannot grow under dynamic
                // control; keeping them static preserves the specializer
                // projections' power on static inputs.
                let must_gen = (self.opts.strategy == GenStrategy::Offline
                    && self.gen.lam_is_critical(*id)
                    && !d.is_fully_static())
                    || d.size() > self.opts.max_desc_size;
                if must_gen { self.generalize(d, sigma) } else { Ok(d) }
            }
            SimpleExpr::Prim(l, op, args) => {
                let descs = args
                    .iter()
                    .map(|a| self.spec_simple(a, env, sigma))
                    .collect::<Result<Vec<_>, _>>()?;
                self.prim_on_descs(l.0, *op, descs, se, sigma)
            }
        }
    }

    /// `S⋆` on primitives: reduce statically when the descriptions allow
    /// it (including the paper's "null? on cons descriptions with dynamic
    /// components" case), otherwise bind a fresh configuration variable
    /// to the rebuilt expression.
    fn prim_on_descs(
        &mut self,
        site: u32,
        op: Prim,
        descs: Vec<ValDesc>,
        se: &SimpleExpr,
        sigma: &mut Sigma,
    ) -> Result<ValDesc, SpecError> {
        use Prim::*;
        let quote_bool = |b: bool| Ok(ValDesc::Quote(Constant::Bool(b)));
        match op {
            Cons => {
                let d = ValDesc::Cons {
                    site,
                    car: Arc::new(descs[0].clone()),
                    cdr: Arc::new(descs[1].clone()),
                };
                // Keep the creation site even for fully static pairs: the
                // §4.5 self-embedding test needs it to spot values that
                // grow across dynamic dispatch (quote-collapsing here
                // makes specialization of e.g. deriv diverge).
                let must_gen = (self.opts.strategy == GenStrategy::Offline
                    && self.gen.cons_is_critical(site))
                    || d.size() > self.opts.max_desc_size;
                if must_gen {
                    self.generalize(d, sigma)
                } else {
                    Ok(d)
                }
            }
            Car => match &descs[0] {
                ValDesc::Cons { car, .. } => Ok((**car).clone()),
                ValDesc::Quote(Constant::Pair(a, _)) => Ok(ValDesc::Quote((**a).clone())),
                _ => self.dynamic_prim(op, descs, se, sigma),
            },
            Cdr => match &descs[0] {
                ValDesc::Cons { cdr, .. } => Ok((**cdr).clone()),
                ValDesc::Quote(Constant::Pair(_, d)) => Ok(ValDesc::Quote((**d).clone())),
                _ => self.dynamic_prim(op, descs, se, sigma),
            },
            NullP => match &descs[0] {
                ValDesc::Quote(Constant::Nil) => quote_bool(true),
                ValDesc::Quote(_) | ValDesc::Cons { .. } | ValDesc::Clos { .. } => {
                    quote_bool(false)
                }
                ValDesc::Cv { .. } => self.dynamic_prim(op, descs, se, sigma),
            },
            PairP => match &descs[0] {
                ValDesc::Cons { .. } | ValDesc::Quote(Constant::Pair(_, _)) => quote_bool(true),
                ValDesc::Quote(_) | ValDesc::Clos { .. } => quote_bool(false),
                ValDesc::Cv { .. } => self.dynamic_prim(op, descs, se, sigma),
            },
            Not => match descs[0].truthiness() {
                Some(b) => quote_bool(!b),
                None => self.dynamic_prim(op, descs, se, sigma),
            },
            SymbolP | NumberP | BooleanP => match &descs[0] {
                ValDesc::Quote(k) => quote_bool(match op {
                    SymbolP => matches!(k, Constant::Sym(_)),
                    NumberP => matches!(k, Constant::Int(_)),
                    _ => matches!(k, Constant::Bool(_)),
                }),
                ValDesc::Cons { .. } | ValDesc::Clos { .. } => quote_bool(false),
                ValDesc::Cv { .. } => self.dynamic_prim(op, descs, se, sigma),
            },
            EqualP => match (descs[0].as_constant(), descs[1].as_constant()) {
                (Some(a), Some(b)) => quote_bool(a == b),
                _ => self.dynamic_prim(op, descs, se, sigma),
            },
            EqP | EqvP => match (&descs[0], &descs[1]) {
                // Only atoms fold: runtime eq? on pairs is identity, which
                // compile time must not guess.
                (ValDesc::Quote(a), ValDesc::Quote(b))
                    if !matches!(a, Constant::Pair(_, _))
                        && !matches!(b, Constant::Pair(_, _)) =>
                {
                    quote_bool(a == b)
                }
                _ => self.dynamic_prim(op, descs, se, sigma),
            },
            Add | Sub | Mul | Quotient | Remainder | NumEq | Lt | Gt | Le | Ge => {
                match (&descs[0], &descs[1]) {
                    (ValDesc::Quote(Constant::Int(a)), ValDesc::Quote(Constant::Int(b))) => {
                        match fold_arith(op, *a, *b) {
                            Some(k) => Ok(ValDesc::Quote(k)),
                            // Overflow / division by zero: leave it to the
                            // runtime, faithfully.
                            None => self.dynamic_prim(op, descs, se, sigma),
                        }
                    }
                    _ => self.dynamic_prim(op, descs, se, sigma),
                }
            }
            ZeroP | Add1 | Sub1 => match &descs[0] {
                ValDesc::Quote(Constant::Int(n)) => match op {
                    ZeroP => quote_bool(*n == 0),
                    Add1 => match n.checked_add(1) {
                        Some(m) => Ok(ValDesc::Quote(Constant::Int(m))),
                        None => self.dynamic_prim(op, descs, se, sigma),
                    },
                    _ => match n.checked_sub(1) {
                        Some(m) => Ok(ValDesc::Quote(Constant::Int(m))),
                        None => self.dynamic_prim(op, descs, se, sigma),
                    },
                },
                _ => self.dynamic_prim(op, descs, se, sigma),
            },
        }
    }

    fn dynamic_prim(
        &mut self,
        op: Prim,
        descs: Vec<ValDesc>,
        se: &SimpleExpr,
        sigma: &mut Sigma,
    ) -> Result<ValDesc, SpecError> {
        let expr = S0Simple::Prim(
            op,
            descs
                .iter()
                .map(|d| d.residualize(sigma))
                .collect::<Result<_, _>>()?,
        );
        let cv = self.fresh_cv();
        sigma.insert(cv, expr);
        let cands = if self.opts.trick_flow { self.flow.lambdas_of(se) } else { self.all_lams() };
        Ok(ValDesc::Cv { id: cv, cands })
    }

    // ------------------------------------------------------------------
    // Generalization (§4.5)
    // ------------------------------------------------------------------

    /// Lifts a description to a fresh configuration variable whose
    /// runtime value is the `D[·]`-lifted residual expression.
    fn generalize(&mut self, d: ValDesc, sigma: &mut Sigma) -> Result<ValDesc, SpecError> {
        self.counters.generalizations += 1;
        let expr = d.residualize(sigma)?;
        let cv = self.fresh_cv();
        sigma.insert(cv, expr);
        Ok(ValDesc::Cv { id: cv, cands: d.closure_candidates() })
    }

    /// The online scan at a dynamic conditional: generalize
    /// self-embedding descriptions in ρ and τ, and split the stack when
    /// its static spine shows repetition.
    fn generalize_state(
        &mut self,
        env: &mut Env,
        tau: &mut CtxStack,
        sigma: &mut Sigma,
        label: u32,
    ) -> Result<(), SpecError> {
        let vars: Vec<VarId> = env.keys().copied().collect();
        for v in vars {
            let d = env[&v].clone();
            if d.is_self_embedding() || d.size() > self.opts.max_desc_size {
                let g = self.generalize(d, sigma)?;
                env.insert(v, g);
            }
        }
        for i in 0..tau.prefix.len() {
            let d = tau.prefix[i].clone();
            if d.is_self_embedding() || d.size() > self.opts.max_desc_size {
                tau.prefix[i] = self.generalize(d, sigma)?;
            }
        }
        // Spine repetition: the same lambda pushed twice, or unknown
        // contexts piling on a stack that already has a dynamic rest.
        let mut seen: BTreeSet<LamId> = BTreeSet::new();
        let mut cv_count = 0usize;
        let mut repeat = false;
        for d in &tau.prefix {
            match d {
                ValDesc::Clos { lam, .. } if !seen.insert(*lam) => repeat = true,
                ValDesc::Clos { .. } => {}
                ValDesc::Cv { .. } => {
                    cv_count += 1;
                    if cv_count > 1 || tau.dyn_rest.is_some() {
                        repeat = true;
                    }
                }
                _ => {}
            }
        }
        if repeat {
            self.flush_stack(tau, sigma, label)?;
        }
        Ok(())
    }

    /// Moves the whole static prefix onto the dynamic context stack — an
    /// ordinary runtime list of closures, top at the car, terminated by
    /// the previous dynamic rest or `'()` (the halt context).
    fn flush_stack(
        &mut self,
        tau: &mut CtxStack,
        sigma: &mut Sigma,
        label: u32,
    ) -> Result<(), SpecError> {
        if tau.prefix.is_empty() && tau.dyn_rest.is_some() {
            return Ok(());
        }
        // A flush changes the stack representation from fully static to
        // the dynamic runtime list for good.  When the termination
        // analysis marked this label as stack-growing the flush was
        // statically anticipated — an eager generalization; otherwise
        // the dynamic machinery discovered it — a widening.
        if self.sct.as_ref().is_some_and(|s| s.stack_labels.contains(&label)) {
            self.counters.eager_generalizations += 1;
            self.events.push(ControlEvent {
                label,
                kind: ControlKind::StackEager,
                var: None,
            });
        } else {
            self.counters.widenings += 1;
            self.events.push(ControlEvent {
                label,
                kind: ControlKind::StackFlush,
                var: None,
            });
        }
        let mut expr = match &tau.dyn_rest {
            Some(d) => d.residualize(sigma)?,
            None => S0Simple::Const(Constant::Nil),
        };
        let mut cands = match &tau.dyn_rest {
            Some(ValDesc::Cv { cands, .. }) => cands.clone(),
            _ => LamSet::new(),
        };
        for d in tau.prefix.drain(..) {
            cands = cands.union(&d.closure_candidates());
            expr = S0Simple::Prim(Prim::Cons, vec![d.residualize(sigma)?, expr]);
        }
        // Every lambda that may ever be pushed can be on the stack once
        // it is dynamic (pops lose the per-element provenance).
        cands = cands.union(&self.gen.stack_candidates);
        let cv = self.fresh_cv();
        sigma.insert(cv, expr);
        tau.dyn_rest = Some(ValDesc::Cv { id: cv, cands });
        Ok(())
    }
}

fn elapsed_ns(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn fold_arith(op: Prim, a: i64, b: i64) -> Option<Constant> {
    use Prim::*;
    Some(match op {
        Add => Constant::Int(a.checked_add(b)?),
        Sub => Constant::Int(a.checked_sub(b)?),
        Mul => Constant::Int(a.checked_mul(b)?),
        Quotient => {
            if b == 0 {
                return None;
            }
            Constant::Int(a.checked_div(b)?)
        }
        Remainder => {
            if b == 0 {
                return None;
            }
            Constant::Int(a.checked_rem(b)?)
        }
        NumEq => Constant::Bool(a == b),
        Lt => Constant::Bool(a < b),
        Gt => Constant::Bool(a > b),
        Le => Constant::Bool(a <= b),
        Ge => Constant::Bool(a >= b),
        _ => return None,
    })
}

fn datum_to_constant(d: &Datum) -> Constant {
    match d {
        Datum::Int(n) => Constant::Int(*n),
        Datum::Bool(b) => Constant::Bool(*b),
        Datum::Char(c) => Constant::Char(*c),
        Datum::Str(s) => Constant::Str(s.clone()),
        Datum::Sym(s) => Constant::Sym(s.clone()),
        Datum::Nil => Constant::Nil,
        Datum::Pair(p) => Constant::Pair(
            Arc::new(datum_to_constant(&p.0)),
            Arc::new(datum_to_constant(&p.1)),
        ),
        Datum::Closure(c) => match *c {},
    }
}

/// Makes an entry parameter name unique among already chosen ones,
/// stripping the `%` of generated temporaries.
fn unique_param_name(base: &str, taken: &[String]) -> String {
    let base = base.replace('%', "t");
    if !taken.contains(&base) {
        return base;
    }
    let mut i = 2;
    loop {
        let cand = format!("{base}{i}");
        if !taken.contains(&cand) {
            return cand;
        }
        i += 1;
    }
}
