//! Golden tests: residual programs for key inputs have exactly the
//! structure the paper describes — not just the right behaviour.

use pe_core::{compile, specialize, CompileOptions, GenStrategy, S0Simple, S0Tail};
use pe_frontend::{desugar, parse_source};
use pe_interp::Datum;

fn compile_src(src: &str, entry: &str, opts: &CompileOptions) -> pe_core::S0Program {
    let p = parse_source(src).unwrap();
    let d = desugar(&p).unwrap();
    compile(&d, entry, opts).unwrap()
}

/// A first-order tail loop compiles to itself: one residual procedure,
/// same test, same arithmetic — the compiler adds zero overhead where
/// there is nothing to convert.
#[test]
fn tail_loop_compiles_to_itself() {
    let s0 = compile_src(
        "(define (count n acc) (if (zero? n) acc (count (- n 1) (+ acc 1))))",
        "count",
        &CompileOptions::default(),
    );
    assert_eq!(s0.procs.len(), 1, "{s0}");
    let body = &s0.procs[0].body;
    let S0Tail::If(cond, t, f) = body else {
        panic!("expected residual conditional, got {body:?}")
    };
    assert!(matches!(cond, S0Simple::Prim(pe_frontend::Prim::ZeroP, _)));
    assert!(matches!(&**t, S0Tail::Return(S0Simple::Var(_))));
    let S0Tail::TailCall(callee, args) = &**f else {
        panic!("expected self tail call")
    };
    assert_eq!(*callee, s0.procs[0].name);
    assert_eq!(args.len(), 2);
    // No closure machinery at all: the program was already tail form.
    assert!(!s0.to_source().contains("closure"), "{s0}");
}

/// Static arithmetic disappears entirely.
#[test]
fn static_arithmetic_folds() {
    let s0 = compile_src(
        "(define (f x) (+ x (* 3 (+ 2 2))))",
        "f",
        &CompileOptions::default(),
    );
    let text = s0.to_source();
    assert!(text.contains("12"), "folded constant expected: {text}");
    assert!(!text.contains('*'), "no residual multiplication: {text}");
}

/// The identity continuation keeps its empty closure; the inner
/// continuation captures exactly its two free variables — the closure
/// layout of the paper's §1 listing.
#[test]
fn cps_append_closure_layout() {
    let s0 = compile_src(
        "(define (append x y) (cps-append x y (lambda (v) v)))
         (define (cps-append x y c)
           (if (null? x) (c y)
               (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
        "append",
        &CompileOptions::default(),
    );
    let text = s0.to_source();
    // One make-closure with zero captured values (identity)…
    let mut zero_capture = 0;
    let mut two_capture = 0;
    for p in &s0.procs {
        count_closures(&p.body, &mut |n| match n {
            0 => zero_capture += 1,
            2 => two_capture += 1,
            _ => {}
        });
    }
    assert!(zero_capture >= 1, "identity closure: {text}");
    assert!(two_capture >= 1, "inner continuation captures c and x: {text}");
}

fn count_closures(t: &S0Tail, f: &mut impl FnMut(usize)) {
    fn simple(s: &S0Simple, f: &mut impl FnMut(usize)) {
        match s {
            S0Simple::MakeClosure(_, args) => {
                f(args.len());
                args.iter().for_each(|a| simple(a, f));
            }
            S0Simple::Prim(_, args) => args.iter().for_each(|a| simple(a, f)),
            S0Simple::ClosureLabel(a) | S0Simple::ClosureFreeval(a, _) => simple(a, f),
            S0Simple::Var(_) | S0Simple::Const(_) => {}
        }
    }
    match t {
        S0Tail::Return(s) => simple(s, f),
        S0Tail::If(c, a, b) => {
            simple(c, f);
            count_closures(a, f);
            count_closures(b, f);
        }
        S0Tail::TailCall(_, args) => args.iter().for_each(|a| simple(a, f)),
        S0Tail::Fail(_) => {}
    }
}

/// Specializing a dispatcher to its (static) table eliminates the table
/// and the lookup loop — only the selected operations survive.
#[test]
fn dispatcher_specialization_eliminates_table() {
    let src = "(define (run op x) (step op x))
         (define (step op x)
           (if (eq? op 'inc) (+ x 1)
               (if (eq? op 'dec) (- x 1)
                   (if (eq? op 'dbl) (* x 2) x))))";
    let p = parse_source(src).unwrap();
    let d = desugar(&p).unwrap();
    let opts = CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() };
    let s0 =
        specialize(&d, "run", &[Some(Datum::parse("dbl").unwrap()), None], &opts).unwrap();
    let text = s0.to_source();
    assert!(!text.contains("eq?"), "dispatch eliminated: {text}");
    assert!(!text.contains("inc") && !text.contains("dec"), "dead arms gone: {text}");
    assert!(text.contains('*'), "selected op survives: {text}");
}

/// Without post-processing the residual program uses the paper's
/// generated names; with it the entry keeps the source name.
#[test]
fn residual_naming_scheme() {
    let src = "(define (go l) (walk l))
               (define (walk l) (if (null? l) 'done (walk (cdr l))))";
    let raw = compile_src(
        src,
        "go",
        &CompileOptions { postprocess: false, ..CompileOptions::default() },
    );
    assert!(raw.procs.iter().skip(1).all(|p| p.name.starts_with("sl-eval-$")), "{raw}");
    assert!(raw
        .procs
        .iter()
        .skip(1)
        .all(|p| p.params.iter().all(|v| v.starts_with("cv-vals-$"))));
    assert_eq!(raw.entry, "go");
}
